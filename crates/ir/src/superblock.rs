//! Superblock (trace) formation over a method's layout-order blocks.
//!
//! A *superblock* is a straight-line trace of consecutive blocks whose
//! profile counts certify that the fall-through path is hot; internal
//! conditional branches become *side exits* the scheduler may speculate
//! across. Formation is pure IR + profile analysis — no machine model is
//! involved — so it lives here, where both the scheduler (`wts-sched`)
//! and the pipeline (`wts-core`) can reach it.
//!
//! # Formation rule
//!
//! Starting from each not-yet-consumed block, the trace extends to the
//! next layout block while **both** hold:
//!
//! 1. control can actually reach the next layout block: the current
//!    block ends in a conditional branch (`bc`, whose not-taken edge is
//!    the fall-through) or in no terminator at all. An *unconditional*
//!    branch (`b`), a computed jump (`bctr`) or a return (`blr`) ends
//!    the trace — their successor is not the next layout block, and
//!    concatenating across them would merge instructions that never
//!    execute consecutively;
//! 2. the next block's execution count is within the hot-path window of
//!    the trace entry's count: `ratio ≤ next/entry ≤ 1/ratio`, compared
//!    in exact integer arithmetic (the ratio is given in percent), so
//!    boundary counts are included and large counts lose no precision.
//!
//! # Examples
//!
//! ```
//! use wts_ir::{form_superblocks, BasicBlock, Inst, Method, Opcode, Reg};
//!
//! let mut m = Method::new(0, "m");
//! for (id, exec, term) in [(0, 100, Some(Opcode::Bc)), (1, 95, Some(Opcode::Blr))] {
//!     let mut b = BasicBlock::new(id);
//!     b.push(Inst::new(Opcode::Add).def(Reg::gpr(1)).use_(Reg::gpr(2)).use_(Reg::gpr(2)));
//!     if let Some(t) = term {
//!         b.push(Inst::new(t));
//!     }
//!     b.set_exec_count(exec);
//!     m.push_block(b);
//! }
//! let traces = form_superblocks(&m, 70);
//! assert_eq!(traces.len(), 1);
//! assert_eq!(traces[0].width(), 2);
//! ```

use crate::{BasicBlock, Inst, Method, Opcode};
use std::fmt;

/// Which unit the trace→label→train→evaluate pipeline operates on.
///
/// `Block` is the paper's scenario: one decision per basic block.
/// `Superblock` is the deferred extension (§3.1, footnote 6): blocks are
/// first merged into profile-hot traces by [`form_superblocks`] and the
/// decision — extract features, consult the filter, maybe schedule
/// (speculatively) — is made once per *trace*.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ScopeKind {
    /// Per-basic-block scheduling decisions (the paper's setting).
    #[default]
    Block,
    /// Per-superblock decisions; the payload is the hot-path ratio in
    /// percent (`70` means a successor within `0.70×..1/0.70×` of the
    /// entry count extends the trace). Must lie in `1..=100`.
    Superblock(u32),
}

impl ScopeKind {
    /// The formation ratio in percent, `None` at block scope.
    pub fn ratio_percent(self) -> Option<u32> {
        match self {
            ScopeKind::Block => None,
            ScopeKind::Superblock(p) => Some(p),
        }
    }

    /// True for the superblock scope.
    pub fn is_superblock(self) -> bool {
        matches!(self, ScopeKind::Superblock(_))
    }
}

impl fmt::Display for ScopeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScopeKind::Block => write!(f, "block"),
            ScopeKind::Superblock(p) => write!(f, "superblock(r={p}%)"),
        }
    }
}

/// A formed superblock: the trace's instructions plus bookkeeping.
#[derive(Debug, Clone, PartialEq)]
pub struct Superblock {
    /// Ids of the merged blocks, in trace order.
    pub block_ids: Vec<u32>,
    /// The concatenated instructions.
    pub insts: Vec<Inst>,
    /// Profile weight of the trace (the entry block's count).
    pub exec_count: u64,
}

impl Superblock {
    /// Number of merged blocks.
    pub fn width(&self) -> usize {
        self.block_ids.len()
    }

    /// The entry block's id (the trace's identity in trace records).
    pub fn entry_id(&self) -> u32 {
        self.block_ids[0]
    }
}

/// Forms superblocks from a method's layout-order blocks.
///
/// The traces partition the method: every block appears in exactly one
/// trace, and trace order is layout order. `ratio_percent` is the
/// hot-path window in percent (the paper-adjacent experiments use `70`).
/// See the module docs for the exact formation rule.
///
/// # Panics
///
/// Panics if `ratio_percent` is not within `1..=100`.
pub fn form_superblocks(method: &Method, ratio_percent: u32) -> Vec<Superblock> {
    assert!((1..=100).contains(&ratio_percent), "ratio must be in 1..=100 percent, got {ratio_percent}");
    let blocks = method.blocks();
    let mut out = Vec::new();
    let mut i = 0;
    while i < blocks.len() {
        let entry = &blocks[i];
        let mut sb =
            Superblock { block_ids: vec![entry.id().0], insts: entry.insts().to_vec(), exec_count: entry.exec_count() };
        let mut j = i;
        while j + 1 < blocks.len() && extends(&blocks[j], &blocks[j + 1], entry.exec_count(), ratio_percent) {
            j += 1;
            sb.block_ids.push(blocks[j].id().0);
            sb.insts.extend(blocks[j].insts().iter().cloned());
        }
        out.push(sb);
        i = j + 1;
    }
    out
}

/// True when the trace currently ending at `cur` may absorb `next`.
fn extends(cur: &BasicBlock, next: &BasicBlock, entry_exec: u64, ratio_percent: u32) -> bool {
    // Control must be able to reach the next layout block: only a
    // conditional branch (fall-through on the not-taken edge) or the
    // absence of a terminator continues the trace. An unconditional
    // branch, computed jump or return transfers elsewhere — extending
    // across it would concatenate instructions that never execute
    // consecutively and corrupt every downstream cycle count.
    let continues = match cur.insts().last().map(Inst::opcode) {
        Some(op) if op.is_terminator() => op == Opcode::Bc,
        _ => true, // fall-through (no terminator, or a non-terminator last inst)
    };
    if !continues {
        return false;
    }
    // Hot-path window in exact integer arithmetic: the old
    // `(entry as f64 * ratio) as u64` truncated boundary counts out of
    // the window and lost precision above 2^53. `ratio ≤ next/entry`
    // ⇔ `next·100 ≥ entry·ratio%`, and `next/entry ≤ 1/ratio`
    // ⇔ `next·ratio% ≤ entry·100`; u128 keeps the products exact for
    // every u64 count.
    let (next, entry, pct) = (next.exec_count() as u128, entry_exec as u128, ratio_percent as u128);
    next * 100 >= entry * pct && next * pct <= entry * 100
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Reg;

    fn block(id: u32, exec: u64, term: Option<Opcode>) -> BasicBlock {
        let mut b = BasicBlock::new(id);
        b.push(Inst::new(Opcode::Add).def(Reg::gpr(10)).use_(Reg::gpr(1)).use_(Reg::gpr(2)));
        if let Some(t) = term {
            let mut i = Inst::new(t);
            if t == Opcode::Bc {
                i = i.use_(Reg::cr(0));
            }
            if t == Opcode::Blr {
                i = i.use_(Reg::lr());
            }
            b.push(i);
        }
        b.set_exec_count(exec);
        b
    }

    fn method(blocks: Vec<BasicBlock>) -> Method {
        let mut m = Method::new(0, "m");
        for b in blocks {
            m.push_block(b);
        }
        m
    }

    #[test]
    fn merges_equal_weight_fallthrough_chain() {
        let m = method(vec![
            block(0, 100, Some(Opcode::Bc)),
            block(1, 95, Some(Opcode::Bc)),
            block(2, 90, Some(Opcode::Blr)),
        ]);
        let sbs = form_superblocks(&m, 70);
        assert_eq!(sbs.len(), 1);
        assert_eq!(sbs[0].block_ids, vec![0, 1, 2]);
        assert_eq!(sbs[0].exec_count, 100);
        assert_eq!(sbs[0].width(), 3);
        assert_eq!(sbs[0].entry_id(), 0);
    }

    #[test]
    fn cold_successor_breaks_the_trace() {
        let m = method(vec![
            block(0, 100, Some(Opcode::Bc)),
            block(1, 10, Some(Opcode::Bc)), // taken branch dominates: cold fall-through
            block(2, 10, Some(Opcode::Blr)),
        ]);
        let sbs = form_superblocks(&m, 70);
        assert_eq!(sbs.len(), 2);
        assert_eq!(sbs[0].block_ids, vec![0]);
        assert_eq!(sbs[1].block_ids, vec![1, 2]);
    }

    #[test]
    fn returns_break_the_trace() {
        let m = method(vec![block(0, 100, Some(Opcode::Blr)), block(1, 100, Some(Opcode::Blr))]);
        let sbs = form_superblocks(&m, 70);
        assert_eq!(sbs.len(), 2);
    }

    /// Regression (PR 5): `extends` used to treat *every* non-return
    /// terminator as extendable, so a trace merged straight across an
    /// unconditional `b` whose target is not the next layout block —
    /// concatenating instructions that never execute consecutively.
    #[test]
    fn unconditional_jump_to_nonadjacent_target_breaks_the_trace() {
        let m = method(vec![
            block(0, 100, Some(Opcode::B)), // jumps elsewhere; bb1 is NOT its successor
            block(1, 100, Some(Opcode::Blr)),
        ]);
        let sbs = form_superblocks(&m, 70);
        assert_eq!(sbs.len(), 2, "an unconditional branch must end the trace");
        assert_eq!(sbs[0].block_ids, vec![0]);
        assert_eq!(sbs[1].block_ids, vec![1]);
    }

    #[test]
    fn computed_jump_breaks_the_trace() {
        let m = method(vec![block(0, 100, Some(Opcode::Bctr)), block(1, 100, Some(Opcode::Blr))]);
        assert_eq!(form_superblocks(&m, 70).len(), 2);
    }

    #[test]
    fn conditional_branch_and_plain_fallthrough_extend() {
        let m = method(vec![
            block(0, 100, Some(Opcode::Bc)),
            block(1, 100, None), // no terminator: plain fall-through
            block(2, 100, Some(Opcode::Blr)),
        ]);
        let sbs = form_superblocks(&m, 70);
        assert_eq!(sbs.len(), 1);
        assert_eq!(sbs[0].block_ids, vec![0, 1, 2]);
    }

    #[test]
    fn much_hotter_successor_breaks_the_trace() {
        // A loop head entered from below: successor is far hotter than
        // the entry; merging would mis-weight it.
        let m = method(vec![block(0, 10, Some(Opcode::Bc)), block(1, 500, Some(Opcode::Blr))]);
        let sbs = form_superblocks(&m, 70);
        assert_eq!(sbs.len(), 2);
    }

    /// Regression (PR 5): the hot-path window was computed through f64
    /// with truncating casts, so an exactly-on-the-boundary count fell
    /// out of the window and huge counts lost low bits. The window is
    /// now exact: boundaries are included at any magnitude.
    #[test]
    fn boundary_counts_are_inside_the_window_exactly() {
        // next = entry * 70%: exactly on the low boundary.
        let m = method(vec![block(0, 100, Some(Opcode::Bc)), block(1, 70, Some(Opcode::Blr))]);
        assert_eq!(form_superblocks(&m, 70).len(), 1, "low boundary is inclusive");
        // One below the boundary breaks.
        let m = method(vec![block(0, 100, Some(Opcode::Bc)), block(1, 69, Some(Opcode::Blr))]);
        assert_eq!(form_superblocks(&m, 70).len(), 2);
        // Counts beyond 2^53 (f64's integer precision) still compare
        // exactly: entry = 100·2^53, next = entry · 70% exactly.
        let entry = 100u64 << 53;
        let next = entry / 100 * 70;
        let m = method(vec![block(0, entry, Some(Opcode::Bc)), block(1, next, Some(Opcode::Blr))]);
        assert_eq!(form_superblocks(&m, 70).len(), 1, "huge boundary count stays in the window");
        let m = method(vec![block(0, entry, Some(Opcode::Bc)), block(1, next - 1, Some(Opcode::Blr))]);
        assert_eq!(form_superblocks(&m, 70).len(), 2, "one below the huge boundary breaks");
    }

    #[test]
    fn traces_partition_the_method() {
        let m = method(vec![
            block(0, 10, Some(Opcode::Bc)),
            block(1, 9, Some(Opcode::B)),
            block(2, 9, None),
            block(3, 9, Some(Opcode::Blr)),
        ]);
        let sbs = form_superblocks(&m, 70);
        let ids: Vec<u32> = sbs.iter().flat_map(|sb| sb.block_ids.iter().copied()).collect();
        assert_eq!(ids, vec![0, 1, 2, 3], "every block appears once, in layout order");
        let insts: usize = sbs.iter().map(|sb| sb.insts.len()).sum();
        assert_eq!(insts, m.inst_count());
    }

    #[test]
    fn scope_kind_accessors() {
        assert_eq!(ScopeKind::default(), ScopeKind::Block);
        assert_eq!(ScopeKind::Block.ratio_percent(), None);
        assert_eq!(ScopeKind::Superblock(70).ratio_percent(), Some(70));
        assert!(ScopeKind::Superblock(70).is_superblock());
        assert!(!ScopeKind::Block.is_superblock());
        assert_eq!(ScopeKind::Block.to_string(), "block");
        assert_eq!(ScopeKind::Superblock(70).to_string(), "superblock(r=70%)");
    }

    #[test]
    #[should_panic(expected = "ratio must be in")]
    fn bad_ratio_rejected() {
        form_superblocks(&method(vec![block(0, 1, None)]), 0);
    }

    #[test]
    #[should_panic(expected = "ratio must be in")]
    fn oversized_ratio_rejected() {
        form_superblocks(&method(vec![block(0, 1, None)]), 101);
    }
}
