//! Opcode definitions with their static scheduling properties.

use std::fmt;

/// The functional-unit class an opcode needs.
///
/// The PowerPC 7410 has *dissimilar* integer units: simple ALU operations
/// can issue to either integer unit while multiply/divide are confined to
/// one of them. The machine model maps a [`UnitClass`] to the set of
/// concrete units that can execute it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum UnitClass {
    /// Simple integer ALU work (add, logic, shifts, compares, moves).
    SimpleInt,
    /// Complex integer work (multiply, divide) — one unit only on the 7410.
    ComplexInt,
    /// Floating-point unit.
    Float,
    /// Branch unit.
    Branch,
    /// Load/store unit.
    LoadStore,
    /// System unit (SPR moves, syncs, traps, runtime pseudo-ops).
    System,
}

impl UnitClass {
    /// All unit classes, in a fixed order.
    pub const ALL: [UnitClass; 6] = [
        UnitClass::SimpleInt,
        UnitClass::ComplexInt,
        UnitClass::Float,
        UnitClass::Branch,
        UnitClass::LoadStore,
        UnitClass::System,
    ];
}

impl fmt::Display for UnitClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            UnitClass::SimpleInt => "simple-int",
            UnitClass::ComplexInt => "complex-int",
            UnitClass::Float => "float",
            UnitClass::Branch => "branch",
            UnitClass::LoadStore => "load-store",
            UnitClass::System => "system",
        };
        f.write_str(s)
    }
}

macro_rules! opcodes {
    ($( $(#[$doc:meta])* $name:ident => ($mnem:expr, $unit:ident, $kind:ident) ),+ $(,)?) => {
        /// A machine opcode (PowerPC-flavoured, plus JIT runtime pseudo-ops).
        ///
        /// Each opcode knows its [`UnitClass`] and its coarse kind, from
        /// which the Table 1 instruction categories are derived.
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub enum Opcode {
            $( $(#[$doc])* $name, )+
        }

        impl Opcode {
            /// Every opcode, in declaration order.
            pub const ALL: &'static [Opcode] = &[ $(Opcode::$name,)+ ];

            /// Number of opcodes (exclusive upper bound of [`Opcode::index`]).
            pub const COUNT: usize = Opcode::ALL.len();

            /// Dense index of this opcode, usable for table lookups.
            pub fn index(self) -> usize {
                self as usize
            }

            /// Assembly-style mnemonic.
            pub fn mnemonic(self) -> &'static str {
                match self { $(Opcode::$name => $mnem,)+ }
            }

            /// The functional-unit class this opcode issues to.
            pub fn unit_class(self) -> UnitClass {
                match self { $(Opcode::$name => UnitClass::$unit,)+ }
            }

            fn kind(self) -> OpKind {
                match self { $(Opcode::$name => OpKind::$kind,)+ }
            }
        }
    };
}

/// Coarse operation kind used to derive categories.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum OpKind {
    Alu,
    Load,
    Store,
    Branch,
    Call,
    Return,
    Sys,
}

opcodes! {
    // --- integer ALU ------------------------------------------------------
    /// Load immediate into a GPR.
    Li => ("li", SimpleInt, Alu),
    /// Register move.
    Mr => ("mr", SimpleInt, Alu),
    /// Add immediate.
    Addi => ("addi", SimpleInt, Alu),
    /// Add.
    Add => ("add", SimpleInt, Alu),
    /// Subtract from.
    Subf => ("subf", SimpleInt, Alu),
    /// Negate.
    Neg => ("neg", SimpleInt, Alu),
    /// Bitwise and.
    And => ("and", SimpleInt, Alu),
    /// Bitwise or.
    Or => ("or", SimpleInt, Alu),
    /// Bitwise xor.
    Xor => ("xor", SimpleInt, Alu),
    /// Shift left word.
    Slw => ("slw", SimpleInt, Alu),
    /// Shift right word.
    Srw => ("srw", SimpleInt, Alu),
    /// Shift right algebraic word.
    Sraw => ("sraw", SimpleInt, Alu),
    /// Rotate left word immediate then and with mask.
    Rlwinm => ("rlwinm", SimpleInt, Alu),
    /// Sign-extend byte.
    Extsb => ("extsb", SimpleInt, Alu),
    /// Sign-extend halfword.
    Extsh => ("extsh", SimpleInt, Alu),
    /// Compare (signed), defines a CR field.
    Cmp => ("cmp", SimpleInt, Alu),
    /// Compare logical (unsigned), defines a CR field.
    Cmpl => ("cmpl", SimpleInt, Alu),
    /// Count leading zeros.
    Cntlzw => ("cntlzw", SimpleInt, Alu),
    /// Multiply low word (complex integer unit).
    Mullw => ("mullw", ComplexInt, Alu),
    /// Multiply high word (complex integer unit).
    Mulhw => ("mulhw", ComplexInt, Alu),
    /// Divide word (complex integer unit, long latency).
    Divw => ("divw", ComplexInt, Alu),
    /// Divide word unsigned (complex integer unit, long latency).
    Divwu => ("divwu", ComplexInt, Alu),

    // --- loads -------------------------------------------------------------
    /// Load word and zero.
    Lwz => ("lwz", LoadStore, Load),
    /// Load byte and zero.
    Lbz => ("lbz", LoadStore, Load),
    /// Load halfword and zero.
    Lhz => ("lhz", LoadStore, Load),
    /// Load halfword algebraic.
    Lha => ("lha", LoadStore, Load),
    /// Load floating-point single.
    Lfs => ("lfs", LoadStore, Load),
    /// Load floating-point double.
    Lfd => ("lfd", LoadStore, Load),

    // --- stores ------------------------------------------------------------
    /// Store word.
    Stw => ("stw", LoadStore, Store),
    /// Store byte.
    Stb => ("stb", LoadStore, Store),
    /// Store halfword.
    Sth => ("sth", LoadStore, Store),
    /// Store floating-point single.
    Stfs => ("stfs", LoadStore, Store),
    /// Store floating-point double.
    Stfd => ("stfd", LoadStore, Store),

    // --- floating point ------------------------------------------------------
    /// FP add (double).
    Fadd => ("fadd", Float, Alu),
    /// FP subtract.
    Fsub => ("fsub", Float, Alu),
    /// FP multiply.
    Fmul => ("fmul", Float, Alu),
    /// FP divide (very long latency, not pipelined).
    Fdiv => ("fdiv", Float, Alu),
    /// FP multiply-add.
    Fmadd => ("fmadd", Float, Alu),
    /// FP negate.
    Fneg => ("fneg", Float, Alu),
    /// FP absolute value.
    Fabs => ("fabs", Float, Alu),
    /// FP round to single.
    Frsp => ("frsp", Float, Alu),
    /// FP convert to integer word.
    Fctiw => ("fctiw", Float, Alu),
    /// FP compare, defines a CR field.
    Fcmpu => ("fcmpu", Float, Alu),

    // --- branches / calls / returns -----------------------------------------
    /// Unconditional branch (block terminator).
    B => ("b", Branch, Branch),
    /// Conditional branch on a CR field (block terminator).
    Bc => ("bc", Branch, Branch),
    /// Branch to CTR (computed jump, block terminator).
    Bctr => ("bctr", Branch, Branch),
    /// Branch and link: direct call.
    Bl => ("bl", Branch, Call),
    /// Branch to CTR and link: indirect call (virtual dispatch).
    Bctrl => ("bctrl", Branch, Call),
    /// Branch to LR: method return (block terminator).
    Blr => ("blr", Branch, Return),

    // --- system ---------------------------------------------------------------
    /// Move from special-purpose register.
    Mfspr => ("mfspr", System, Sys),
    /// Move to special-purpose register.
    Mtspr => ("mtspr", System, Sys),
    /// Heavyweight memory barrier.
    Sync => ("sync", System, Sys),
    /// Instruction synchronize.
    Isync => ("isync", System, Sys),
    /// Trap word (conditional trap; used for explicit checks).
    Tw => ("tw", System, Sys),
    /// Explicit null-check pseudo-op (Jikes RVM-style PEI).
    NullCheck => ("nullcheck", System, Sys),
    /// Array bounds-check pseudo-op (PEI).
    BoundsCheck => ("boundscheck", System, Sys),
    /// GC safepoint pseudo-op emitted by the JIT.
    GcSafepoint => ("gcpoint", System, Sys),
    /// Thread-switch test pseudo-op emitted by the JIT.
    ThreadSwitchPoint => ("tspoint", System, Sys),
    /// Loop/method yield-point pseudo-op emitted by the JIT.
    YieldPoint => ("yieldpoint", System, Sys),
}

impl Opcode {
    /// True for loads from memory.
    pub fn is_load(self) -> bool {
        self.kind() == OpKind::Load
    }

    /// True for stores to memory.
    pub fn is_store(self) -> bool {
        self.kind() == OpKind::Store
    }

    /// True for any memory access.
    pub fn is_memory(self) -> bool {
        self.is_load() || self.is_store()
    }

    /// True for non-call, non-return branches.
    pub fn is_branch(self) -> bool {
        self.kind() == OpKind::Branch
    }

    /// True for calls (`bl`, `bctrl`).
    pub fn is_call(self) -> bool {
        self.kind() == OpKind::Call
    }

    /// True for method returns (`blr`).
    pub fn is_return(self) -> bool {
        self.kind() == OpKind::Return
    }

    /// True for any control transfer (branch, call or return).
    pub fn is_control(self) -> bool {
        self.is_branch() || self.is_call() || self.is_return()
    }

    /// True when this opcode legally terminates a basic block.
    pub fn is_terminator(self) -> bool {
        self.is_branch() || self.is_return()
    }

    /// True for opcodes executing on an integer unit (simple or complex).
    pub fn is_integer_unit(self) -> bool {
        matches!(self.unit_class(), UnitClass::SimpleInt | UnitClass::ComplexInt)
    }

    /// True for opcodes executing on the floating-point unit.
    pub fn is_float_unit(self) -> bool {
        self.unit_class() == UnitClass::Float
    }

    /// True for opcodes executing on the system unit.
    pub fn is_system_unit(self) -> bool {
        self.unit_class() == UnitClass::System
    }

    /// True when the opcode writes memory or is otherwise a side effect the
    /// scheduler must never reorder relative to other side effects.
    pub fn has_side_effect(self) -> bool {
        self.is_store()
            || self.is_control()
            || matches!(
                self,
                Opcode::Sync
                    | Opcode::Isync
                    | Opcode::Tw
                    | Opcode::GcSafepoint
                    | Opcode::ThreadSwitchPoint
                    | Opcode::YieldPoint
            )
    }
}

impl fmt::Display for Opcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_is_dense_and_matches_all_order() {
        for (i, &op) in Opcode::ALL.iter().enumerate() {
            assert_eq!(op.index(), i);
        }
        assert_eq!(Opcode::COUNT, Opcode::ALL.len());
    }

    #[test]
    fn all_lists_every_opcode_once() {
        let mut seen = Opcode::ALL.to_vec();
        seen.sort();
        seen.dedup();
        assert_eq!(seen.len(), Opcode::ALL.len());
        assert!(Opcode::ALL.len() >= 50, "expected a rich opcode set");
    }

    #[test]
    fn loads_and_stores_are_memory() {
        assert!(Opcode::Lwz.is_load());
        assert!(Opcode::Lfd.is_load());
        assert!(!Opcode::Lwz.is_store());
        assert!(Opcode::Stw.is_store());
        assert!(Opcode::Stfd.is_memory());
        assert!(!Opcode::Add.is_memory());
    }

    #[test]
    fn control_kinds_are_disjoint() {
        for &op in Opcode::ALL {
            let n = usize::from(op.is_branch()) + usize::from(op.is_call()) + usize::from(op.is_return());
            assert!(n <= 1, "{op} claims multiple control kinds");
        }
        assert!(Opcode::B.is_branch());
        assert!(Opcode::Bl.is_call());
        assert!(Opcode::Blr.is_return());
        assert!(!Opcode::Bl.is_terminator());
        assert!(Opcode::Bc.is_terminator());
        assert!(Opcode::Blr.is_terminator());
    }

    #[test]
    fn unit_classes_match_architecture() {
        assert_eq!(Opcode::Add.unit_class(), UnitClass::SimpleInt);
        assert_eq!(Opcode::Mullw.unit_class(), UnitClass::ComplexInt);
        assert_eq!(Opcode::Divw.unit_class(), UnitClass::ComplexInt);
        assert_eq!(Opcode::Fadd.unit_class(), UnitClass::Float);
        assert_eq!(Opcode::Lwz.unit_class(), UnitClass::LoadStore);
        assert_eq!(Opcode::B.unit_class(), UnitClass::Branch);
        assert_eq!(Opcode::Sync.unit_class(), UnitClass::System);
    }

    #[test]
    fn integer_unit_covers_simple_and_complex() {
        assert!(Opcode::Add.is_integer_unit());
        assert!(Opcode::Divw.is_integer_unit());
        assert!(!Opcode::Fadd.is_integer_unit());
        assert!(Opcode::Fmadd.is_float_unit());
        assert!(Opcode::YieldPoint.is_system_unit());
    }

    #[test]
    fn side_effects_include_barriers_and_safepoints() {
        assert!(Opcode::Stw.has_side_effect());
        assert!(Opcode::Sync.has_side_effect());
        assert!(Opcode::YieldPoint.has_side_effect());
        assert!(Opcode::B.has_side_effect());
        assert!(!Opcode::Add.has_side_effect());
        assert!(!Opcode::Lwz.has_side_effect());
    }

    #[test]
    fn mnemonics_are_unique() {
        let mut ms: Vec<&str> = Opcode::ALL.iter().map(|o| o.mnemonic()).collect();
        ms.sort_unstable();
        ms.dedup();
        assert_eq!(ms.len(), Opcode::ALL.len());
    }
}
