//! Registers and register classes.

use std::fmt;

/// Architectural register class, mirroring the PowerPC register files.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RegClass {
    /// General-purpose (integer) registers, `r0..`.
    Gpr,
    /// Floating-point registers, `f0..`.
    Fpr,
    /// Condition register fields, `cr0..`.
    Cr,
    /// Special-purpose registers (LR, CTR, XER, ...), `spr0..`.
    Spr,
}

impl RegClass {
    /// All register classes, in display order.
    pub const ALL: [RegClass; 4] = [RegClass::Gpr, RegClass::Fpr, RegClass::Cr, RegClass::Spr];

    /// One-letter prefix used when printing registers of this class.
    pub fn prefix(self) -> &'static str {
        match self {
            RegClass::Gpr => "r",
            RegClass::Fpr => "f",
            RegClass::Cr => "cr",
            RegClass::Spr => "spr",
        }
    }
}

impl fmt::Display for RegClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.prefix())
    }
}

/// A machine register: a class plus an index within the class.
///
/// The IR is post-register-allocation (as in the paper: scheduling runs on
/// the machine-specific form the JIT emits), so indices name physical
/// registers and reuse of an index creates anti/output dependences.
///
/// # Examples
///
/// ```
/// use wts_ir::{Reg, RegClass};
/// let r3 = Reg::gpr(3);
/// assert_eq!(r3.class(), RegClass::Gpr);
/// assert_eq!(r3.index(), 3);
/// assert_eq!(r3.to_string(), "r3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg {
    class: RegClass,
    index: u16,
}

impl Reg {
    /// Creates a register of the given class and index.
    pub const fn new(class: RegClass, index: u16) -> Reg {
        Reg { class, index }
    }

    /// General-purpose register `r<index>`.
    pub const fn gpr(index: u16) -> Reg {
        Reg::new(RegClass::Gpr, index)
    }

    /// Floating-point register `f<index>`.
    pub const fn fpr(index: u16) -> Reg {
        Reg::new(RegClass::Fpr, index)
    }

    /// Condition-register field `cr<index>`.
    pub const fn cr(index: u16) -> Reg {
        Reg::new(RegClass::Cr, index)
    }

    /// Special-purpose register `spr<index>` (0 = LR, 1 = CTR by convention).
    pub const fn spr(index: u16) -> Reg {
        Reg::new(RegClass::Spr, index)
    }

    /// The link register (call/return linkage).
    pub const fn lr() -> Reg {
        Reg::spr(0)
    }

    /// The count register (indirect branches).
    pub const fn ctr() -> Reg {
        Reg::spr(1)
    }

    /// This register's class.
    pub fn class(self) -> RegClass {
        self.class
    }

    /// This register's index within its class.
    pub fn index(self) -> u16 {
        self.index
    }

    /// A dense key usable for array-indexed register maps.
    ///
    /// Keys are unique across classes; see [`Reg::dense_limit`].
    pub fn dense_key(self) -> usize {
        let base = match self.class {
            RegClass::Gpr => 0,
            RegClass::Fpr => 1024,
            RegClass::Cr => 2048,
            RegClass::Spr => 3072,
        };
        base + self.index as usize
    }

    /// Exclusive upper bound on [`Reg::dense_key`] values.
    pub fn dense_limit() -> usize {
        4096
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", self.class.prefix(), self.index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_class_and_index() {
        assert_eq!(Reg::gpr(5).class(), RegClass::Gpr);
        assert_eq!(Reg::fpr(9).class(), RegClass::Fpr);
        assert_eq!(Reg::cr(1).class(), RegClass::Cr);
        assert_eq!(Reg::spr(2).class(), RegClass::Spr);
        assert_eq!(Reg::gpr(5).index(), 5);
    }

    #[test]
    fn display_uses_class_prefix() {
        assert_eq!(Reg::gpr(31).to_string(), "r31");
        assert_eq!(Reg::fpr(0).to_string(), "f0");
        assert_eq!(Reg::cr(7).to_string(), "cr7");
        assert_eq!(Reg::spr(1).to_string(), "spr1");
    }

    #[test]
    fn lr_and_ctr_are_sprs() {
        assert_eq!(Reg::lr(), Reg::spr(0));
        assert_eq!(Reg::ctr(), Reg::spr(1));
    }

    #[test]
    fn dense_keys_distinct_across_classes() {
        let regs = [Reg::gpr(3), Reg::fpr(3), Reg::cr(3), Reg::spr(3)];
        let mut keys: Vec<usize> = regs.iter().map(|r| r.dense_key()).collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), 4);
        for r in regs {
            assert!(r.dense_key() < Reg::dense_limit());
        }
    }

    #[test]
    fn ordering_is_class_major() {
        assert!(Reg::gpr(1000) < Reg::fpr(0));
        assert!(Reg::gpr(3) < Reg::gpr(4));
    }
}
