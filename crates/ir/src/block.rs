//! Basic blocks: single-entry single-exit instruction sequences.

use crate::validate::{validate_block, ValidateError};
use crate::Inst;

/// Identifier of a basic block within a [`Program`](crate::Program).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct BlockId(pub u32);

impl std::fmt::Display for BlockId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "bb{}", self.0)
    }
}

/// A basic block: a straight-line sequence with one entry and one exit.
///
/// Blocks carry an *execution count*, the profile weight used by the
/// paper's weighted simulated running time
/// `SIM_pi(P) = sum_b #executions(b) * cycles(b under pi)`.
///
/// # Examples
///
/// ```
/// use wts_ir::{BasicBlock, Inst, Opcode, Reg};
/// let mut b = BasicBlock::new(7);
/// b.push(Inst::new(Opcode::Li).def(Reg::gpr(1)).imm(3));
/// b.set_exec_count(1000);
/// assert_eq!(b.id().0, 7);
/// assert_eq!(b.exec_count(), 1000);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct BasicBlock {
    id: BlockId,
    insts: Vec<Inst>,
    exec_count: u64,
}

impl BasicBlock {
    /// An empty block with the given id and an execution count of 1.
    pub fn new(id: u32) -> BasicBlock {
        BasicBlock { id: BlockId(id), insts: Vec::new(), exec_count: 1 }
    }

    /// Builds a block from parts.
    pub fn from_insts(id: u32, insts: Vec<Inst>) -> BasicBlock {
        BasicBlock { id: BlockId(id), insts, exec_count: 1 }
    }

    /// This block's id.
    pub fn id(&self) -> BlockId {
        self.id
    }

    /// Appends an instruction.
    pub fn push(&mut self, inst: Inst) {
        self.insts.push(inst);
    }

    /// The instructions, in program order.
    pub fn insts(&self) -> &[Inst] {
        &self.insts
    }

    /// Number of instructions (the paper's `bbLen` feature).
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// True when the block holds no instructions.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// Profile execution count.
    pub fn exec_count(&self) -> u64 {
        self.exec_count
    }

    /// Sets the profile execution count.
    pub fn set_exec_count(&mut self, n: u64) {
        self.exec_count = n;
    }

    /// Returns a copy of this block with its instructions permuted into
    /// `order` (a permutation of `0..len`), keeping id and profile weight.
    ///
    /// # Panics
    ///
    /// Panics if `order` is not a permutation of `0..self.len()`.
    pub fn reordered(&self, order: &[usize]) -> BasicBlock {
        assert_eq!(order.len(), self.insts.len(), "order length mismatch");
        let mut seen = vec![false; order.len()];
        let mut insts = Vec::with_capacity(order.len());
        for &i in order {
            assert!(!seen[i], "duplicate index {i} in order");
            seen[i] = true;
            insts.push(self.insts[i]);
        }
        BasicBlock { id: self.id, insts, exec_count: self.exec_count }
    }

    /// Permutes this block's instructions into `order` in place, using
    /// `buf` as swap space. `buf`'s contents are discarded and its
    /// allocation reused (after the call it holds the block's previous
    /// storage), so repeated application allocates nothing in steady
    /// state. The allocation-free counterpart of
    /// [`BasicBlock::reordered`].
    ///
    /// # Panics
    ///
    /// Panics if `order`'s length differs from the block's, or (debug
    /// builds only) when `order` is not a permutation.
    pub fn permute_in_place(&mut self, order: &[usize], buf: &mut Vec<Inst>) {
        assert_eq!(order.len(), self.insts.len(), "order length mismatch");
        debug_assert!(
            {
                let mut seen = vec![false; order.len()];
                order.iter().all(|&i| i < seen.len() && !std::mem::replace(&mut seen[i], true))
            },
            "order must be a permutation"
        );
        buf.clear();
        buf.extend(order.iter().map(|&i| self.insts[i]));
        std::mem::swap(&mut self.insts, buf);
    }

    /// Checks structural invariants (terminator placement, operand shape).
    ///
    /// # Errors
    ///
    /// Returns the first [`ValidateError`] found, if any.
    pub fn validate(&self) -> Result<(), ValidateError> {
        validate_block(self)
    }

    /// Iterates over the instructions.
    pub fn iter(&self) -> std::slice::Iter<'_, Inst> {
        self.insts.iter()
    }
}

impl<'a> IntoIterator for &'a BasicBlock {
    type Item = &'a Inst;
    type IntoIter = std::slice::Iter<'a, Inst>;
    fn into_iter(self) -> Self::IntoIter {
        self.insts.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Opcode, Reg};

    fn three_inst_block() -> BasicBlock {
        let mut b = BasicBlock::new(0);
        b.push(Inst::new(Opcode::Li).def(Reg::gpr(1)).imm(1));
        b.push(Inst::new(Opcode::Li).def(Reg::gpr(2)).imm(2));
        b.push(Inst::new(Opcode::Add).def(Reg::gpr(3)).use_(Reg::gpr(1)).use_(Reg::gpr(2)));
        b
    }

    #[test]
    fn push_and_len() {
        let b = three_inst_block();
        assert_eq!(b.len(), 3);
        assert!(!b.is_empty());
        assert!(BasicBlock::new(1).is_empty());
    }

    #[test]
    fn exec_count_defaults_to_one() {
        let mut b = BasicBlock::new(0);
        assert_eq!(b.exec_count(), 1);
        b.set_exec_count(42);
        assert_eq!(b.exec_count(), 42);
    }

    #[test]
    fn reordered_permutes_and_keeps_metadata() {
        let mut b = three_inst_block();
        b.set_exec_count(9);
        let r = b.reordered(&[1, 0, 2]);
        assert_eq!(r.insts()[0], b.insts()[1]);
        assert_eq!(r.insts()[1], b.insts()[0]);
        assert_eq!(r.insts()[2], b.insts()[2]);
        assert_eq!(r.exec_count(), 9);
        assert_eq!(r.id(), b.id());
    }

    #[test]
    #[should_panic(expected = "duplicate index")]
    fn reordered_rejects_duplicates() {
        three_inst_block().reordered(&[0, 0, 1]);
    }

    #[test]
    #[should_panic(expected = "order length mismatch")]
    fn reordered_rejects_wrong_length() {
        three_inst_block().reordered(&[0, 1]);
    }

    #[test]
    fn iteration_matches_insts() {
        let b = three_inst_block();
        let n = b.iter().count();
        assert_eq!(n, 3);
        let m = (&b).into_iter().count();
        assert_eq!(m, 3);
    }
}
