//! Instructions: opcode + register defs/uses + memory reference + hazards.

use crate::{Category, CategorySet, Opcode, Reg};
use std::fmt;

/// Abstract memory spaces used for cheap may-alias reasoning.
///
/// The JIT knows, per access, whether it touches the Java stack, the heap or
/// static/class storage; accesses in different spaces never alias.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MemSpace {
    /// Spill slots and locals; fully disambiguated by slot number.
    Stack,
    /// Object fields and array elements.
    Heap,
    /// Static fields.
    Static,
}

/// A memory reference: a space plus an optional disambiguated slot.
///
/// Two references *may alias* when they are in the same space and either
/// has an unknown slot or both have the same slot.
///
/// # Examples
///
/// ```
/// use wts_ir::{MemRef, MemSpace};
/// let a = MemRef::slot(MemSpace::Stack, 4);
/// let b = MemRef::slot(MemSpace::Stack, 8);
/// let c = MemRef::unknown(MemSpace::Stack);
/// assert!(!a.may_alias(b));
/// assert!(a.may_alias(c));
/// assert!(!a.may_alias(MemRef::unknown(MemSpace::Heap)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemRef {
    space: MemSpace,
    slot: Option<u32>,
}

impl MemRef {
    /// A reference to a known slot within `space`.
    pub fn slot(space: MemSpace, slot: u32) -> MemRef {
        MemRef { space, slot: Some(slot) }
    }

    /// A reference somewhere within `space` (not disambiguated).
    pub fn unknown(space: MemSpace) -> MemRef {
        MemRef { space, slot: None }
    }

    /// The memory space accessed.
    pub fn space(self) -> MemSpace {
        self.space
    }

    /// The disambiguated slot, if known.
    pub fn slot_id(self) -> Option<u32> {
        self.slot
    }

    /// Conservative may-alias test.
    pub fn may_alias(self, other: MemRef) -> bool {
        self.space == other.space
            && match (self.slot, other.slot) {
                (Some(a), Some(b)) => a == b,
                _ => true,
            }
    }
}

impl fmt::Display for MemRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let space = match self.space {
            MemSpace::Stack => "stack",
            MemSpace::Heap => "heap",
            MemSpace::Static => "static",
        };
        match self.slot {
            Some(s) => write!(f, "[{space}+{s}]"),
            None => write!(f, "[{space}+?]"),
        }
    }
}

/// Hazard flags: unusual possible branches that disallow reordering.
///
/// These mirror the four hazard rows of Table 1. They are flags on an
/// instruction (not opcodes) because they overlap with ordinary kinds: a
/// load can be a PEI, a call is usually a GC point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Hazards(u8);

impl Hazards {
    /// No hazards.
    pub const NONE: Hazards = Hazards(0);
    /// Potentially-excepting instruction.
    pub const PEI: Hazards = Hazards(1);
    /// Garbage-collection point.
    pub const GC_POINT: Hazards = Hazards(2);
    /// Thread-switch point.
    pub const THREAD_SWITCH: Hazards = Hazards(4);
    /// Yield point.
    pub const YIELD: Hazards = Hazards(8);

    /// Union of two hazard sets.
    pub fn union(self, other: Hazards) -> Hazards {
        Hazards(self.0 | other.0)
    }

    /// True when every hazard in `other` is present in `self`.
    pub fn contains(self, other: Hazards) -> bool {
        self.0 & other.0 == other.0
    }

    /// True when no hazard flag is set.
    pub fn is_none(self) -> bool {
        self.0 == 0
    }

    /// The categories contributed by these hazard flags.
    pub fn categories(self) -> CategorySet {
        let mut set = CategorySet::new();
        if self.contains(Hazards::PEI) {
            set.insert(Category::Pei);
        }
        if self.contains(Hazards::GC_POINT) {
            set.insert(Category::GcPoint);
        }
        if self.contains(Hazards::THREAD_SWITCH) {
            set.insert(Category::ThreadSwitch);
        }
        if self.contains(Hazards::YIELD) {
            set.insert(Category::Yield);
        }
        set
    }
}

impl std::ops::BitOr for Hazards {
    type Output = Hazards;
    fn bitor(self, rhs: Hazards) -> Hazards {
        self.union(rhs)
    }
}

impl fmt::Display for Hazards {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_none() {
            return write!(f, "-");
        }
        write!(f, "{}", self.categories())
    }
}

/// An inline fixed-capacity operand list — the `SmallVec` idiom without
/// the dependency.
///
/// Def/use lists are tiny (nothing in the ISA writes more than two
/// registers or reads more than three), so operands live inside the
/// instruction itself and building an [`Inst`] performs no heap
/// allocation. The filler in unused slots never escapes: comparison,
/// hashing and iteration see only the live prefix.
///
/// # Examples
///
/// ```
/// use wts_ir::{Reg, RegList};
/// let mut l = RegList::new();
/// l.push(Reg::gpr(3));
/// l.push(Reg::gpr(4));
/// assert_eq!(l.as_slice(), &[Reg::gpr(3), Reg::gpr(4)]);
/// ```
#[derive(Clone, Copy)]
pub struct RegList {
    regs: [Reg; RegList::CAPACITY],
    len: u8,
}

impl RegList {
    /// Inline capacity. [`RegList::push`] past this panics — a new opcode
    /// with wider operand lists must raise the capacity here, not fall
    /// back to spilling.
    pub const CAPACITY: usize = 4;

    /// An empty list.
    pub const fn new() -> RegList {
        RegList { regs: [Reg::gpr(0); RegList::CAPACITY], len: 0 }
    }

    /// Appends a register.
    ///
    /// # Panics
    ///
    /// Panics when the list already holds [`RegList::CAPACITY`] registers.
    pub fn push(&mut self, r: Reg) {
        assert!(
            (self.len as usize) < RegList::CAPACITY,
            "operand list overflow: an instruction holds at most {} defs or uses",
            RegList::CAPACITY,
        );
        self.regs[self.len as usize] = r;
        self.len += 1;
    }

    /// The live registers, in insertion order.
    pub fn as_slice(&self) -> &[Reg] {
        &self.regs[..self.len as usize]
    }

    /// Number of live registers.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// True when no register has been pushed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl Default for RegList {
    fn default() -> RegList {
        RegList::new()
    }
}

impl std::ops::Deref for RegList {
    type Target = [Reg];
    fn deref(&self) -> &[Reg] {
        self.as_slice()
    }
}

impl PartialEq for RegList {
    fn eq(&self, other: &RegList) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for RegList {}

impl std::hash::Hash for RegList {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl fmt::Debug for RegList {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.as_slice()).finish()
    }
}

impl<'a> IntoIterator for &'a RegList {
    type Item = &'a Reg;
    type IntoIter = std::slice::Iter<'a, Reg>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

impl FromIterator<Reg> for RegList {
    /// # Panics
    ///
    /// Panics when the iterator yields more than [`RegList::CAPACITY`]
    /// registers.
    fn from_iter<I: IntoIterator<Item = Reg>>(iter: I) -> RegList {
        let mut list = RegList::new();
        for r in iter {
            list.push(r);
        }
        list
    }
}

/// A single machine instruction.
///
/// Construction is builder-style: [`Inst::new`] then chained
/// [`def`](Inst::def) / [`use_`](Inst::use_) / [`mem`](Inst::mem) /
/// [`hazard`](Inst::hazard) / [`imm`](Inst::imm) calls. Operands are
/// stored inline ([`RegList`]), so an `Inst` is a small `Copy` value and
/// blocks of instructions are flat, cache-friendly arrays.
///
/// # Examples
///
/// ```
/// use wts_ir::{Hazards, Inst, MemRef, MemSpace, Opcode, Reg};
/// let ld = Inst::new(Opcode::Lwz)
///     .def(Reg::gpr(3))
///     .use_(Reg::gpr(4))
///     .mem(MemRef::unknown(MemSpace::Heap))
///     .hazard(Hazards::PEI);
/// assert!(ld.opcode().is_load());
/// assert!(ld.hazards().contains(Hazards::PEI));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Inst {
    opcode: Opcode,
    defs: RegList,
    uses: RegList,
    mem: Option<MemRef>,
    hazards: Hazards,
    imm: Option<i64>,
}

impl Inst {
    /// A new instruction with the given opcode and no operands.
    pub fn new(opcode: Opcode) -> Inst {
        Inst { opcode, defs: RegList::new(), uses: RegList::new(), mem: None, hazards: Hazards::NONE, imm: None }
    }

    /// Adds a defined (written) register.
    pub fn def(mut self, r: Reg) -> Inst {
        self.defs.push(r);
        self
    }

    /// Adds a used (read) register.
    ///
    /// Named `use_` because `use` is a keyword.
    pub fn use_(mut self, r: Reg) -> Inst {
        self.uses.push(r);
        self
    }

    /// Sets the memory reference (for loads/stores).
    pub fn mem(mut self, m: MemRef) -> Inst {
        self.mem = Some(m);
        self
    }

    /// Adds hazard flags.
    pub fn hazard(mut self, h: Hazards) -> Inst {
        self.hazards = self.hazards.union(h);
        self
    }

    /// Sets an immediate operand.
    pub fn imm(mut self, v: i64) -> Inst {
        self.imm = Some(v);
        self
    }

    /// The opcode.
    pub fn opcode(&self) -> Opcode {
        self.opcode
    }

    /// Registers written by this instruction.
    pub fn defs(&self) -> &[Reg] {
        self.defs.as_slice()
    }

    /// Registers read by this instruction.
    pub fn uses(&self) -> &[Reg] {
        self.uses.as_slice()
    }

    /// The memory reference, if this instruction accesses memory.
    pub fn mem_ref(&self) -> Option<MemRef> {
        self.mem
    }

    /// The hazard flags.
    pub fn hazards(&self) -> Hazards {
        self.hazards
    }

    /// The immediate operand, if any.
    pub fn immediate(&self) -> Option<i64> {
        self.imm
    }

    /// True when this instruction carries any hazard flag.
    pub fn is_hazardous(&self) -> bool {
        !self.hazards.is_none()
    }

    /// The full (possibly-overlapping) category set of this instruction:
    /// opcode kind + functional unit + hazard flags, per Table 1.
    pub fn categories(&self) -> CategorySet {
        let op = self.opcode;
        let mut set = self.hazards.categories();
        if op.is_branch() {
            set.insert(Category::Branch);
        }
        if op.is_call() {
            set.insert(Category::Call);
        }
        if op.is_load() {
            set.insert(Category::Load);
        }
        if op.is_store() {
            set.insert(Category::Store);
        }
        if op.is_return() {
            set.insert(Category::Return);
        }
        if op.is_integer_unit() {
            set.insert(Category::Integer);
        }
        if op.is_float_unit() {
            set.insert(Category::Float);
        }
        if op.is_system_unit() {
            set.insert(Category::System);
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_alias_rules() {
        let s4 = MemRef::slot(MemSpace::Stack, 4);
        assert!(s4.may_alias(s4));
        assert!(!s4.may_alias(MemRef::slot(MemSpace::Stack, 5)));
        assert!(s4.may_alias(MemRef::unknown(MemSpace::Stack)));
        assert!(!s4.may_alias(MemRef::slot(MemSpace::Heap, 4)));
        assert!(MemRef::unknown(MemSpace::Heap).may_alias(MemRef::unknown(MemSpace::Heap)));
    }

    #[test]
    fn hazard_flags_compose() {
        let h = Hazards::PEI | Hazards::GC_POINT;
        assert!(h.contains(Hazards::PEI));
        assert!(h.contains(Hazards::GC_POINT));
        assert!(!h.contains(Hazards::YIELD));
        assert!(Hazards::NONE.is_none());
        assert_eq!(h.categories().len(), 2);
    }

    #[test]
    fn reg_list_tracks_live_prefix_only() {
        let a: RegList = [Reg::gpr(1), Reg::gpr(2)].into_iter().collect();
        let mut b = RegList::new();
        b.push(Reg::gpr(1));
        b.push(Reg::gpr(2));
        assert_eq!(a, b);
        assert_eq!(a.len(), 2);
        assert!(!a.is_empty());
        assert_eq!(format!("{a:?}"), format!("{:?}", [Reg::gpr(1), Reg::gpr(2)]));
        // The filler value in dead slots is invisible: a list holding a
        // real r0 differs from an empty one.
        let mut c = RegList::new();
        c.push(Reg::gpr(0));
        assert_ne!(c, RegList::new());
        assert_eq!(RegList::default(), RegList::new());
    }

    #[test]
    fn reg_list_overflow_panics_with_capacity_in_message() {
        let err = std::panic::catch_unwind(|| {
            let mut l = RegList::new();
            for i in 0..=RegList::CAPACITY {
                l.push(Reg::gpr(i as u16));
            }
        })
        .unwrap_err();
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("operand list overflow"), "got: {msg}");
    }

    #[test]
    fn builder_accumulates_operands() {
        let i = Inst::new(Opcode::Add).def(Reg::gpr(1)).use_(Reg::gpr(2)).use_(Reg::gpr(3));
        assert_eq!(i.defs(), &[Reg::gpr(1)]);
        assert_eq!(i.uses(), &[Reg::gpr(2), Reg::gpr(3)]);
        assert_eq!(i.mem_ref(), None);
        assert_eq!(i.immediate(), None);
    }

    #[test]
    fn categories_combine_kind_unit_and_hazards() {
        let ld = Inst::new(Opcode::Lwz)
            .def(Reg::gpr(3))
            .use_(Reg::gpr(4))
            .mem(MemRef::unknown(MemSpace::Heap))
            .hazard(Hazards::PEI);
        let cats = ld.categories();
        assert!(cats.contains(Category::Load));
        assert!(cats.contains(Category::Pei));
        assert!(!cats.contains(Category::Integer), "loads use the load/store unit");
        assert!(!cats.contains(Category::Store));
    }

    #[test]
    fn call_with_gc_point_categories() {
        let call = Inst::new(Opcode::Bl).def(Reg::lr()).hazard(Hazards::GC_POINT);
        let cats = call.categories();
        assert!(cats.contains(Category::Call));
        assert!(cats.contains(Category::GcPoint));
        assert!(!cats.contains(Category::Branch), "calls are not plain branches in Table 1");
    }

    #[test]
    fn yield_point_is_system_and_yield() {
        let yp = Inst::new(Opcode::YieldPoint).hazard(Hazards::YIELD | Hazards::GC_POINT | Hazards::THREAD_SWITCH);
        let cats = yp.categories();
        assert!(cats.contains(Category::System));
        assert!(cats.contains(Category::Yield));
        assert!(cats.contains(Category::ThreadSwitch));
        assert!(cats.contains(Category::GcPoint));
    }

    #[test]
    fn display_of_hazards() {
        assert_eq!(Hazards::NONE.to_string(), "-");
        assert_eq!((Hazards::PEI | Hazards::YIELD).to_string(), "{peis,yieldpoints}");
    }

    #[test]
    fn integer_category_for_simple_and_complex() {
        assert!(Inst::new(Opcode::Add).categories().contains(Category::Integer));
        assert!(Inst::new(Opcode::Divw).categories().contains(Category::Integer));
        assert!(Inst::new(Opcode::Fadd).categories().contains(Category::Float));
    }
}
