//! Assembly-style pretty printing of instructions, blocks and methods.

use crate::{BasicBlock, Inst, Method, Program};
use std::fmt;

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.opcode())?;
        let mut first = true;
        let mut sep = |f: &mut fmt::Formatter<'_>| -> fmt::Result {
            if first {
                first = false;
                write!(f, " ")
            } else {
                write!(f, ", ")
            }
        };
        for d in self.defs() {
            sep(f)?;
            write!(f, "{d}")?;
        }
        for u in self.uses() {
            sep(f)?;
            write!(f, "{u}")?;
        }
        if let Some(m) = self.mem_ref() {
            sep(f)?;
            write!(f, "{m}")?;
        }
        if let Some(v) = self.immediate() {
            sep(f)?;
            write!(f, "{v}")?;
        }
        if self.is_hazardous() {
            write!(f, "  ; {}", self.hazards())?;
        }
        Ok(())
    }
}

impl fmt::Display for BasicBlock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}:  ; exec={}", self.id(), self.exec_count())?;
        for inst in self.iter() {
            writeln!(f, "    {inst}")?;
        }
        Ok(())
    }
}

impl fmt::Display for Method {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "method {} \"{}\":", self.id(), self.name())?;
        for b in self.blocks() {
            write!(f, "{b}")?;
        }
        Ok(())
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "program \"{}\" ({} methods, {} blocks)", self.name(), self.methods().len(), self.block_count())?;
        for m in self.methods() {
            write!(f, "{m}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::{BasicBlock, Hazards, Inst, MemRef, MemSpace, Method, Opcode, Program, Reg};

    #[test]
    fn inst_display_shows_operands() {
        let i = Inst::new(Opcode::Add).def(Reg::gpr(3)).use_(Reg::gpr(1)).use_(Reg::gpr(2));
        assert_eq!(i.to_string(), "add r3, r1, r2");
    }

    #[test]
    fn inst_display_shows_mem_imm_hazards() {
        let i = Inst::new(Opcode::Lwz)
            .def(Reg::gpr(3))
            .use_(Reg::gpr(4))
            .mem(MemRef::slot(MemSpace::Heap, 12))
            .hazard(Hazards::PEI);
        assert_eq!(i.to_string(), "lwz r3, r4, [heap+12]  ; {peis}");
        let li = Inst::new(Opcode::Li).def(Reg::gpr(1)).imm(-7);
        assert_eq!(li.to_string(), "li r1, -7");
    }

    #[test]
    fn block_and_method_display_nest() {
        let mut b = BasicBlock::new(2);
        b.push(Inst::new(Opcode::Blr));
        b.set_exec_count(5);
        let s = b.to_string();
        assert!(s.starts_with("bb2:  ; exec=5\n"));
        assert!(s.contains("    blr"));

        let mut m = Method::new(1, "foo");
        m.push_block(b);
        let ms = m.to_string();
        assert!(ms.starts_with("method m1 \"foo\":"));
        assert!(ms.contains("bb2"));

        let mut p = Program::new("prog");
        p.push_method(m);
        let ps = p.to_string();
        assert!(ps.contains("program \"prog\" (1 methods, 1 blocks)"));
    }
}
