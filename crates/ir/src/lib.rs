//! Machine-level intermediate representation for the `schedfilter` system.
//!
//! This crate models the code that a JIT compiler (in the paper, Jikes RVM)
//! hands to its instruction scheduler: straight-line [`BasicBlock`]s of
//! machine [`Inst`]ructions over PowerPC-style [`Reg`]isters, grouped into
//! [`Method`]s and [`Program`]s.
//!
//! Two aspects matter for the reproduction of Cavazos & Moss (PLDI 2004):
//!
//! * every instruction belongs to some of twelve possibly-overlapping
//!   [`Category`]s (branch, call, load, store, return, integer/float/system
//!   functional unit, and the four *hazards*: potentially-excepting
//!   instructions, GC points, thread-switch points and yield points) — these
//!   are exactly the raw material of the paper's Table 1 features;
//! * instructions carry enough def/use/memory information to build a
//!   dependence DAG and to be list-scheduled.
//!
//! # Examples
//!
//! ```
//! use wts_ir::{BasicBlock, Inst, Opcode, Reg};
//!
//! let mut b = BasicBlock::new(0);
//! b.push(Inst::new(Opcode::Li).def(Reg::gpr(1)).imm(42));
//! b.push(Inst::new(Opcode::Addi).def(Reg::gpr(2)).use_(Reg::gpr(1)).imm(1));
//! b.push(Inst::new(Opcode::Add).def(Reg::gpr(3)).use_(Reg::gpr(1)).use_(Reg::gpr(2)));
//! assert_eq!(b.len(), 3);
//! assert!(b.validate().is_ok());
//! ```

mod block;
mod category;
mod display;
mod inst;
mod method;
mod opcode;
mod reg;
mod superblock;
mod validate;

pub use block::{BasicBlock, BlockId};
pub use category::{Category, CategorySet};
pub use inst::{Hazards, Inst, MemRef, MemSpace, RegList};
pub use method::{Method, MethodId, Program};
pub use opcode::{Opcode, UnitClass};
pub use reg::{Reg, RegClass};
pub use superblock::{form_superblocks, ScopeKind, Superblock};
pub use validate::ValidateError;
