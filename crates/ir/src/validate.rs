//! Structural validation of blocks.
//!
//! The `Display` text of [`ValidateError`] follows the shared diagnostic
//! prose convention (also used by `wts-verify`'s `Diagnostic`): lowercase
//! prose naming the offending instruction by opcode and index, e.g.
//! `terminator bc at index 3 is not the last instruction`. The checker
//! embeds these messages verbatim under its `structure` analysis, so the
//! two layers read identically in reports.

use crate::{BasicBlock, Opcode, RegClass};
use std::fmt;

/// A structural problem found in a [`BasicBlock`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidateError {
    /// A block terminator (branch/return) appears before the last position.
    TerminatorNotLast {
        /// Index of the offending instruction.
        index: usize,
        /// Its opcode.
        opcode: Opcode,
    },
    /// A load or store is missing its memory reference.
    MemoryOpWithoutMemRef {
        /// Index of the offending instruction.
        index: usize,
        /// Its opcode.
        opcode: Opcode,
    },
    /// A non-memory opcode carries a memory reference.
    MemRefOnNonMemoryOp {
        /// Index of the offending instruction.
        index: usize,
        /// Its opcode.
        opcode: Opcode,
    },
    /// A floating-point ALU op defs or uses a non-FPR data register.
    FloatOpOnNonFpr {
        /// Index of the offending instruction.
        index: usize,
        /// Its opcode.
        opcode: Opcode,
    },
}

impl fmt::Display for ValidateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidateError::TerminatorNotLast { index, opcode } => {
                write!(f, "terminator {opcode} at index {index} is not the last instruction")
            }
            ValidateError::MemoryOpWithoutMemRef { index, opcode } => {
                write!(f, "memory op {opcode} at index {index} has no memory reference")
            }
            ValidateError::MemRefOnNonMemoryOp { index, opcode } => {
                write!(f, "non-memory op {opcode} at index {index} carries a memory reference")
            }
            ValidateError::FloatOpOnNonFpr { index, opcode } => {
                write!(f, "float op {opcode} at index {index} touches a non-FPR data register")
            }
        }
    }
}

impl std::error::Error for ValidateError {}

/// FP compare defines a CR field, conversions may touch GPRs via memory, so
/// only pure FP arithmetic is register-class checked.
fn is_pure_float_alu(op: Opcode) -> bool {
    matches!(
        op,
        Opcode::Fadd
            | Opcode::Fsub
            | Opcode::Fmul
            | Opcode::Fdiv
            | Opcode::Fmadd
            | Opcode::Fneg
            | Opcode::Fabs
            | Opcode::Frsp
    )
}

pub(crate) fn validate_block(b: &BasicBlock) -> Result<(), ValidateError> {
    let n = b.len();
    for (i, inst) in b.iter().enumerate() {
        let op = inst.opcode();
        if op.is_terminator() && i + 1 != n {
            return Err(ValidateError::TerminatorNotLast { index: i, opcode: op });
        }
        if op.is_memory() && inst.mem_ref().is_none() {
            return Err(ValidateError::MemoryOpWithoutMemRef { index: i, opcode: op });
        }
        if !op.is_memory() && inst.mem_ref().is_some() {
            return Err(ValidateError::MemRefOnNonMemoryOp { index: i, opcode: op });
        }
        if is_pure_float_alu(op) {
            let bad = inst.defs().iter().chain(inst.uses()).any(|r| r.class() != RegClass::Fpr);
            if bad {
                return Err(ValidateError::FloatOpOnNonFpr { index: i, opcode: op });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Inst, MemRef, MemSpace, Reg};

    #[test]
    fn valid_block_passes() {
        let mut b = BasicBlock::new(0);
        b.push(Inst::new(Opcode::Lwz).def(Reg::gpr(1)).use_(Reg::gpr(2)).mem(MemRef::slot(MemSpace::Stack, 0)));
        b.push(Inst::new(Opcode::Add).def(Reg::gpr(3)).use_(Reg::gpr(1)).use_(Reg::gpr(1)));
        b.push(Inst::new(Opcode::Bc).use_(Reg::cr(0)));
        assert!(b.validate().is_ok());
    }

    #[test]
    fn terminator_must_be_last() {
        let mut b = BasicBlock::new(0);
        b.push(Inst::new(Opcode::B));
        b.push(Inst::new(Opcode::Li).def(Reg::gpr(1)).imm(0));
        let err = b.validate().unwrap_err();
        assert_eq!(err, ValidateError::TerminatorNotLast { index: 0, opcode: Opcode::B });
        assert!(err.to_string().contains("not the last"));
    }

    #[test]
    fn terminator_as_last_is_fine() {
        let mut b = BasicBlock::new(0);
        b.push(Inst::new(Opcode::Li).def(Reg::gpr(1)).imm(0));
        b.push(Inst::new(Opcode::Blr));
        assert!(b.validate().is_ok());
    }

    #[test]
    fn memory_op_needs_mem_ref() {
        let mut b = BasicBlock::new(0);
        b.push(Inst::new(Opcode::Lwz).def(Reg::gpr(1)).use_(Reg::gpr(2)));
        assert!(matches!(b.validate(), Err(ValidateError::MemoryOpWithoutMemRef { .. })));
    }

    #[test]
    fn mem_ref_on_alu_is_rejected() {
        let mut b = BasicBlock::new(0);
        b.push(Inst::new(Opcode::Add).def(Reg::gpr(1)).mem(MemRef::unknown(MemSpace::Heap)));
        assert!(matches!(b.validate(), Err(ValidateError::MemRefOnNonMemoryOp { .. })));
    }

    #[test]
    fn float_alu_requires_fprs() {
        let mut b = BasicBlock::new(0);
        b.push(Inst::new(Opcode::Fadd).def(Reg::fpr(1)).use_(Reg::fpr(2)).use_(Reg::gpr(3)));
        assert!(matches!(b.validate(), Err(ValidateError::FloatOpOnNonFpr { .. })));
        let mut ok = BasicBlock::new(0);
        ok.push(Inst::new(Opcode::Fadd).def(Reg::fpr(1)).use_(Reg::fpr(2)).use_(Reg::fpr(3)));
        assert!(ok.validate().is_ok());
    }

    #[test]
    fn fcmp_may_define_cr() {
        let mut b = BasicBlock::new(0);
        b.push(Inst::new(Opcode::Fcmpu).def(Reg::cr(0)).use_(Reg::fpr(1)).use_(Reg::fpr(2)));
        assert!(b.validate().is_ok());
    }

    #[test]
    fn calls_mid_block_are_legal() {
        let mut b = BasicBlock::new(0);
        b.push(Inst::new(Opcode::Bl).def(Reg::lr()));
        b.push(Inst::new(Opcode::Mr).def(Reg::gpr(4)).use_(Reg::gpr(3)));
        assert!(b.validate().is_ok());
    }
}
