//! Methods and whole programs.

use crate::{BasicBlock, ValidateError};

/// Identifier of a method within a [`Program`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct MethodId(pub u32);

impl std::fmt::Display for MethodId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "m{}", self.0)
    }
}

/// A compiled method: a name plus its basic blocks.
///
/// Control flow between blocks is irrelevant to *local* scheduling and to
/// the filter (both are per-block), so the method is simply the unit at
/// which the JIT compiles and at which the paper's trace file groups blocks.
#[derive(Debug, Clone, PartialEq)]
pub struct Method {
    id: MethodId,
    name: String,
    blocks: Vec<BasicBlock>,
}

impl Method {
    /// A new, empty method.
    pub fn new(id: u32, name: impl Into<String>) -> Method {
        Method { id: MethodId(id), name: name.into(), blocks: Vec::new() }
    }

    /// This method's id.
    pub fn id(&self) -> MethodId {
        self.id
    }

    /// This method's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Appends a block.
    pub fn push_block(&mut self, b: BasicBlock) {
        self.blocks.push(b);
    }

    /// The blocks, in layout order.
    pub fn blocks(&self) -> &[BasicBlock] {
        &self.blocks
    }

    /// Mutable access to the blocks (used by the JIT when installing
    /// scheduled code).
    pub fn blocks_mut(&mut self) -> &mut [BasicBlock] {
        &mut self.blocks
    }

    /// Total instruction count over all blocks.
    pub fn inst_count(&self) -> usize {
        self.blocks.iter().map(BasicBlock::len).sum()
    }

    /// Validates every block.
    ///
    /// # Errors
    ///
    /// Returns the first [`ValidateError`] in any block.
    pub fn validate(&self) -> Result<(), ValidateError> {
        self.blocks.iter().try_for_each(BasicBlock::validate)
    }
}

/// A whole program: a named collection of methods.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    name: String,
    methods: Vec<Method>,
}

impl Program {
    /// A new, empty program.
    pub fn new(name: impl Into<String>) -> Program {
        Program { name: name.into(), methods: Vec::new() }
    }

    /// The program name (e.g. the benchmark it models).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Appends a method.
    pub fn push_method(&mut self, m: Method) {
        self.methods.push(m);
    }

    /// The methods.
    pub fn methods(&self) -> &[Method] {
        &self.methods
    }

    /// Mutable access to the methods.
    pub fn methods_mut(&mut self) -> &mut [Method] {
        &mut self.methods
    }

    /// Total number of basic blocks.
    pub fn block_count(&self) -> usize {
        self.methods.iter().map(|m| m.blocks().len()).sum()
    }

    /// Total number of instructions.
    pub fn inst_count(&self) -> usize {
        self.methods.iter().map(Method::inst_count).sum()
    }

    /// Iterates over `(method, block)` pairs in program order.
    pub fn iter_blocks(&self) -> impl Iterator<Item = (&Method, &BasicBlock)> {
        self.methods.iter().flat_map(|m| m.blocks().iter().map(move |b| (m, b)))
    }

    /// Validates every method.
    ///
    /// # Errors
    ///
    /// Returns the first [`ValidateError`] in any method.
    pub fn validate(&self) -> Result<(), ValidateError> {
        self.methods.iter().try_for_each(Method::validate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Inst, Opcode, Reg};

    fn small_program() -> Program {
        let mut p = Program::new("test");
        for mi in 0..3u32 {
            let mut m = Method::new(mi, format!("m{mi}"));
            for bi in 0..2u32 {
                let mut b = BasicBlock::new(mi * 2 + bi);
                b.push(Inst::new(Opcode::Li).def(Reg::gpr(1)).imm(0));
                b.push(Inst::new(Opcode::Addi).def(Reg::gpr(1)).use_(Reg::gpr(1)).imm(1));
                m.push_block(b);
            }
            p.push_method(m);
        }
        p
    }

    #[test]
    fn counts() {
        let p = small_program();
        assert_eq!(p.methods().len(), 3);
        assert_eq!(p.block_count(), 6);
        assert_eq!(p.inst_count(), 12);
        assert_eq!(p.methods()[1].inst_count(), 4);
    }

    #[test]
    fn iter_blocks_visits_all_in_order() {
        let p = small_program();
        let ids: Vec<u32> = p.iter_blocks().map(|(_, b)| b.id().0).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4, 5]);
        let names: Vec<&str> = p.iter_blocks().map(|(m, _)| m.name()).collect();
        assert_eq!(names[0], "m0");
        assert_eq!(names[5], "m2");
    }

    #[test]
    fn validate_propagates() {
        assert!(small_program().validate().is_ok());
        let mut p = small_program();
        // A branch in the middle of a block is invalid.
        let m = &mut p.methods_mut()[0];
        let b = &mut m.blocks_mut()[0];
        let mut insts = b.insts().to_vec();
        insts.insert(0, Inst::new(Opcode::B));
        *b = BasicBlock::from_insts(0, insts);
        assert!(p.validate().is_err());
    }

    #[test]
    fn names_are_kept() {
        let p = small_program();
        assert_eq!(p.name(), "test");
        assert_eq!(p.methods()[2].name(), "m2");
        assert_eq!(p.methods()[2].id(), MethodId(2));
    }
}
