//! Property-based tests for superblock formation.

use proptest::prelude::*;
use wts_ir::{form_superblocks, BasicBlock, Inst, Method, Opcode, Reg};

/// A layout of `(exec_count, terminator)` pairs expanded into a method
/// whose blocks carry one ALU instruction plus the chosen terminator.
fn method_from(layout: &[(u64, Option<Opcode>)]) -> Method {
    let mut m = Method::new(0, "m");
    for (id, (exec, term)) in layout.iter().enumerate() {
        let mut b = BasicBlock::new(id as u32);
        b.push(Inst::new(Opcode::Add).def(Reg::gpr(10)).use_(Reg::gpr(1)).use_(Reg::gpr(2)));
        if let Some(t) = term {
            let mut i = Inst::new(*t);
            if *t == Opcode::Bc {
                i = i.use_(Reg::cr(0));
            }
            if *t == Opcode::Blr {
                i = i.use_(Reg::lr());
            }
            b.push(i);
        }
        b.set_exec_count(*exec);
        m.push_block(b);
    }
    m
}

fn arb_terminator() -> impl Strategy<Value = Option<Opcode>> {
    prop::sample::select(vec![None, Some(Opcode::Bc), Some(Opcode::B), Some(Opcode::Bctr), Some(Opcode::Blr)])
}

fn arb_layout() -> impl Strategy<Value = Vec<(u64, Option<Opcode>)>> {
    prop::collection::vec((1u64..10_000, arb_terminator()), 1..12)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Regression (PR 5): the hot-path window used to go through f64
    /// with truncating casts, so multiplying every profile count by a
    /// constant could move boundary blocks in or out of their traces.
    /// The window is a pure ratio test — formation must be invariant
    /// under uniform scaling of the execution counts.
    #[test]
    fn formation_is_invariant_under_uniform_count_scaling(layout in arb_layout(),
                                                          ratio in 1u32..=100,
                                                          scale in 1u64..1 << 40) {
        let base = method_from(&layout);
        let scaled_layout: Vec<(u64, Option<Opcode>)> =
            layout.iter().map(|(e, t)| (e.saturating_mul(scale), *t)).collect();
        // Saturation would distort ratios; keep only non-saturating cases.
        prop_assume!(layout.iter().all(|(e, _)| e.checked_mul(scale).is_some()));
        let scaled = method_from(&scaled_layout);

        let a = form_superblocks(&base, ratio);
        let b = form_superblocks(&scaled, ratio);
        let ids_a: Vec<Vec<u32>> = a.iter().map(|sb| sb.block_ids.clone()).collect();
        let ids_b: Vec<Vec<u32>> = b.iter().map(|sb| sb.block_ids.clone()).collect();
        prop_assert_eq!(ids_a, ids_b, "scaling all counts by {} changed the traces", scale);
    }

    /// The traces always partition the method: every block exactly once,
    /// in layout order, with all instructions accounted for.
    #[test]
    fn traces_partition_every_method(layout in arb_layout(), ratio in 1u32..=100) {
        let m = method_from(&layout);
        let sbs = form_superblocks(&m, ratio);
        let ids: Vec<u32> = sbs.iter().flat_map(|sb| sb.block_ids.iter().copied()).collect();
        let expect: Vec<u32> = (0..layout.len() as u32).collect();
        prop_assert_eq!(ids, expect);
        let insts: usize = sbs.iter().map(|sb| sb.insts.len()).sum();
        prop_assert_eq!(insts, m.inst_count());
        for sb in &sbs {
            prop_assert_eq!(sb.exec_count, layout[sb.entry_id() as usize].0);
        }
    }

    /// No trace crosses a control transfer that cannot fall through:
    /// every non-final constituent block ends in `bc` or has no
    /// terminator (the PR 5 unconditional-branch fix, as a property).
    #[test]
    fn traces_never_cross_non_fallthrough_terminators(layout in arb_layout(), ratio in 1u32..=100) {
        let m = method_from(&layout);
        for sb in form_superblocks(&m, ratio) {
            for &bid in &sb.block_ids[..sb.width() - 1] {
                let term = layout[bid as usize].1;
                prop_assert!(
                    term.is_none() || term == Some(Opcode::Bc),
                    "trace crossed a {:?} terminator",
                    term
                );
            }
        }
    }

    /// Degenerate formation at ratio = 100%: only exactly-equal counts
    /// merge, so strictly distinct consecutive counts yield all-width-1
    /// traces.
    #[test]
    fn ratio_100_with_distinct_counts_degenerates_to_blocks(terms in prop::collection::vec(arb_terminator(), 1..10),
                                                            deltas in prop::collection::vec(1u64..50, 1..10)) {
        let n = terms.len().min(deltas.len());
        let mut exec = 1u64;
        let layout: Vec<(u64, Option<Opcode>)> = (0..n)
            .map(|i| {
                exec += deltas[i];
                (exec, terms[i])
            })
            .collect();
        let m = method_from(&layout);
        for sb in form_superblocks(&m, 100) {
            prop_assert_eq!(sb.width(), 1, "distinct counts must not merge at ratio 100%");
        }
    }
}
