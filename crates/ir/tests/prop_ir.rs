//! Property-based tests for the IR: category algebra, block reordering
//! and validation invariants.

use proptest::prelude::*;
use wts_ir::{BasicBlock, Category, CategorySet, Hazards, Inst, MemRef, MemSpace, Opcode, Reg};

fn arb_category() -> impl Strategy<Value = Category> {
    prop::sample::select(Category::ALL.to_vec())
}

fn arb_opcode() -> impl Strategy<Value = Opcode> {
    prop::sample::select(Opcode::ALL.to_vec())
}

fn arb_inst() -> impl Strategy<Value = Inst> {
    (arb_opcode(), 0u16..8, 0u16..8, 0u32..4, prop::bool::ANY, prop::bool::ANY).prop_map(
        |(op, def_idx, use_idx, slot, pei, unknown)| {
            let mut inst = Inst::new(op);
            if op.is_memory() {
                let m = if unknown { MemRef::unknown(MemSpace::Heap) } else { MemRef::slot(MemSpace::Heap, slot) };
                inst = inst.mem(m);
                if op.is_load() {
                    inst = inst.def(Reg::gpr(def_idx)).use_(Reg::gpr(use_idx + 8));
                } else {
                    inst = inst.use_(Reg::gpr(def_idx)).use_(Reg::gpr(use_idx + 8));
                }
            } else if !op.is_control() {
                if op.is_float_unit() {
                    inst = inst.def(Reg::fpr(def_idx)).use_(Reg::fpr(use_idx + 8));
                } else {
                    inst = inst.def(Reg::gpr(def_idx)).use_(Reg::gpr(use_idx + 8));
                }
            }
            if pei {
                inst = inst.hazard(Hazards::PEI);
            }
            inst
        },
    )
}

proptest! {
    #[test]
    fn category_set_insert_then_contains(cats in prop::collection::vec(arb_category(), 0..12)) {
        let set: CategorySet = cats.iter().copied().collect();
        for c in &cats {
            prop_assert!(set.contains(*c));
        }
        prop_assert_eq!(set.iter().count(), set.len());
        prop_assert!(set.len() <= 12);
    }

    #[test]
    fn category_set_union_is_commutative(a in prop::collection::vec(arb_category(), 0..6),
                                         b in prop::collection::vec(arb_category(), 0..6)) {
        let sa: CategorySet = a.into_iter().collect();
        let sb: CategorySet = b.into_iter().collect();
        prop_assert_eq!(sa.union(sb), sb.union(sa));
        prop_assert!(sa.union(sb).len() <= sa.len() + sb.len());
    }

    #[test]
    fn instruction_categories_are_consistent(inst in arb_inst()) {
        let cats = inst.categories();
        // Exclusive op-kind categories: at most one of load/store/branch/call/return.
        let kinds = [Category::Load, Category::Store, Category::Branch, Category::Call, Category::Return];
        let kind_count = kinds.iter().filter(|c| cats.contains(**c)).count();
        prop_assert!(kind_count <= 1, "{inst}: {cats}");
        // Exactly one functional-unit category unless it's a pure control op.
        let units = [Category::Integer, Category::Float, Category::System];
        let unit_count = units.iter().filter(|c| cats.contains(**c)).count();
        prop_assert!(unit_count <= 1);
        // Hazard flags always show up as categories.
        if inst.hazards().contains(Hazards::PEI) {
            prop_assert!(cats.contains(Category::Pei));
        }
    }

    #[test]
    fn reordered_preserves_multiset(insts in prop::collection::vec(arb_inst(), 1..12), seed in 0u64..1000) {
        // Keep only non-terminators so validation is irrelevant here.
        let insts: Vec<Inst> = insts.into_iter().filter(|i| !i.opcode().is_terminator()).collect();
        prop_assume!(!insts.is_empty());
        let n = insts.len();
        let block = BasicBlock::from_insts(0, insts);
        // A deterministic pseudo-random permutation from the seed.
        let mut order: Vec<usize> = (0..n).collect();
        let mut s = seed.wrapping_add(1);
        for i in (1..n).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            order.swap(i, (s >> 33) as usize % (i + 1));
        }
        let r = block.reordered(&order);
        let mut a: Vec<String> = block.insts().iter().map(|i| i.to_string()).collect();
        let mut b: Vec<String> = r.insts().iter().map(|i| i.to_string()).collect();
        a.sort();
        b.sort();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn display_roundtrip_is_nonempty(inst in arb_inst()) {
        let s = inst.to_string();
        prop_assert!(!s.is_empty());
        prop_assert!(s.starts_with(inst.opcode().mnemonic()));
    }

    #[test]
    fn validate_accepts_bodies_without_terminators(insts in prop::collection::vec(arb_inst(), 0..10)) {
        let body: Vec<Inst> = insts.into_iter().filter(|i| !i.opcode().is_terminator()).collect();
        let block = BasicBlock::from_insts(0, body);
        prop_assert!(block.validate().is_ok(), "{block}");
    }
}
