//! Property-based tests for feature extraction.

use proptest::prelude::*;
use wts_features::{Binner, FeatureKind, FeatureMask, FeatureVector};
use wts_ir::{BasicBlock, Hazards, Inst, MemRef, MemSpace, Opcode, Reg};

fn arb_inst() -> impl Strategy<Value = Inst> {
    (prop::sample::select(Opcode::ALL.to_vec()), 0u16..8, 0u32..4, prop::bool::ANY).prop_map(|(op, r, slot, pei)| {
        let mut inst = Inst::new(op);
        if op.is_memory() {
            inst = inst.mem(MemRef::slot(MemSpace::Heap, slot));
            if op.is_load() {
                inst = inst.def(Reg::gpr(r));
            } else {
                inst = inst.use_(Reg::gpr(r));
            }
        }
        if pei {
            inst = inst.hazard(Hazards::PEI);
        }
        inst
    })
}

fn block(insts: Vec<Inst>) -> BasicBlock {
    BasicBlock::from_insts(0, insts)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn fractions_stay_in_unit_interval(insts in prop::collection::vec(arb_inst(), 0..30)) {
        let fv = FeatureVector::extract(&block(insts));
        for k in FeatureKind::ALL {
            if !k.is_count() {
                let v = fv.get(k);
                prop_assert!((0.0..=1.0).contains(&v), "{k}={v}");
            }
        }
    }

    #[test]
    fn bb_len_matches_block(insts in prop::collection::vec(arb_inst(), 0..30)) {
        let b = block(insts);
        let fv = FeatureVector::extract(&b);
        prop_assert_eq!(fv.bb_len(), b.len());
    }

    #[test]
    fn exclusive_kind_fractions_sum_to_at_most_one(insts in prop::collection::vec(arb_inst(), 1..30)) {
        // Loads/stores/branches/calls/returns partition a subset of ops.
        let fv = FeatureVector::extract(&block(insts));
        let kind_sum = fv.get(FeatureKind::Loads)
            + fv.get(FeatureKind::Stores)
            + fv.get(FeatureKind::Branches)
            + fv.get(FeatureKind::Calls)
            + fv.get(FeatureKind::Returns);
        prop_assert!(kind_sum <= 1.0 + 1e-9, "sum {kind_sum}");
        // Functional-unit fractions likewise (branch unit is uncounted).
        let unit_sum = fv.get(FeatureKind::Integers) + fv.get(FeatureKind::Floats) + fv.get(FeatureKind::Systems);
        prop_assert!(unit_sum <= 1.0 + 1e-9, "unit sum {unit_sum}");
    }

    #[test]
    fn extraction_is_insensitive_to_order(insts in prop::collection::vec(arb_inst(), 1..20), seed in 0u64..100) {
        let b = block(insts);
        let n = b.len();
        let mut order: Vec<usize> = (0..n).collect();
        let mut s = seed + 1;
        for i in (1..n).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            order.swap(i, (s >> 33) as usize % (i + 1));
        }
        let shuffled = b.reordered(&order);
        prop_assert_eq!(FeatureVector::extract(&b), FeatureVector::extract(&shuffled),
            "features are a bag-of-categories and must ignore order");
    }

    #[test]
    fn concatenation_averages_fractions(a in prop::collection::vec(arb_inst(), 1..10),
                                        b in prop::collection::vec(arb_inst(), 1..10)) {
        // extract(a ++ b) is the size-weighted average of extract(a), extract(b).
        let fa = FeatureVector::from_insts(&a);
        let fb = FeatureVector::from_insts(&b);
        let mut ab = a.clone();
        ab.extend(b.iter().cloned());
        let fab = FeatureVector::from_insts(&ab);
        let (na, nb) = (a.len() as f64, b.len() as f64);
        for k in FeatureKind::ALL {
            if k.is_count() {
                continue;
            }
            let expect = (fa.get(k) * na + fb.get(k) * nb) / (na + nb);
            prop_assert!((fab.get(k) - expect).abs() < 1e-9, "{k}: {} vs {expect}", fab.get(k));
        }
    }

    #[test]
    fn masked_extraction_agrees_with_full_extraction(insts in prop::collection::vec(arb_inst(), 0..30),
                                                     bits in 0u32..(1 << FeatureKind::COUNT)) {
        let b = block(insts);
        let mask = FeatureMask::of(FeatureKind::ALL.into_iter().filter(|k| bits & (1 << k.index()) != 0));
        let full = FeatureVector::extract(&b);
        let masked = FeatureVector::extract_masked(&b, mask);
        for k in FeatureKind::ALL {
            if mask.contains(k) {
                prop_assert_eq!(masked.get(k), full.get(k), "{} must be bit-identical to full extraction", k);
            } else {
                prop_assert_eq!(masked.get(k), 0.0, "{} was not demanded", k);
            }
        }
    }

    #[test]
    fn extraction_work_is_monotone_in_demand(bits in 0u32..(1 << FeatureKind::COUNT),
                                             extra in 0usize..FeatureKind::COUNT,
                                             bb_len in 0u64..200) {
        let mask = FeatureMask::of(FeatureKind::ALL.into_iter().filter(|k| bits & (1 << k.index()) != 0));
        let bigger = mask.with(FeatureKind::ALL[extra]);
        prop_assert!(mask.extraction_work(bb_len) <= bigger.extraction_work(bb_len));
        prop_assert!(bigger.extraction_work(bb_len) <= FeatureMask::ALL.extraction_work(bb_len));
    }

    #[test]
    fn binner_is_monotone(bins in 1u32..20, a in 0.0f64..1.0, b in 0.0f64..1.0) {
        let binner = Binner::new(bins);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(binner.bin(lo) <= binner.bin(hi));
        prop_assert!(binner.bin(a) < bins);
        let mid = binner.midpoint(binner.bin(a));
        prop_assert!((0.0..=1.0).contains(&mid));
    }
}
