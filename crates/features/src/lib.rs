//! The paper's Table 1 block features, plus the trace-level features of
//! the superblock scope.
//!
//! Thirteen cheap-to-compute static features of a basic block: the block
//! size `bbLen` plus, for each of the twelve instruction categories, the
//! *fraction* of the block's instructions falling into that category.
//! Fractions (rather than counts) let the learner generalize across block
//! sizes (paper §2.1). Computing the vector takes a single pass over the
//! block and never touches the dependence DAG — the paper explicitly
//! rejects DAG-derived features as too expensive.
//!
//! The superblock pipeline (the paper's deferred §3.1 extension) decides
//! per *trace* rather than per block, and four extra trace-shape
//! features feed that decision: the trace width (merged block count),
//! the internal side-exit count, the number of speculation candidates
//! below the first side exit, and the concatenated instruction count.
//! They are formation byproducts — the trace former tallies them while
//! concatenating blocks, so they cost nothing at extraction time — and
//! they degenerate cleanly at block scope (`width 1, 0, 0, bbLen`),
//! keeping one feature vocabulary across both scopes (see
//! [`TraceShape`] and [`FeatureVector::from_insts_shaped`]).
//!
//! Extraction is also *demand-driven*: a [`FeatureMask`] names the
//! features a filter will actually read, and
//! [`FeatureVector::extract_masked`] tallies only those categories —
//! deployed rule sets typically consult two or three features, so the
//! common case skips most of the pass.
//!
//! # Examples
//!
//! ```
//! use wts_features::{FeatureKind, FeatureVector};
//! use wts_ir::{BasicBlock, Inst, MemRef, MemSpace, Opcode, Reg};
//!
//! let mut b = BasicBlock::new(0);
//! b.push(Inst::new(Opcode::Lwz).def(Reg::gpr(1)).use_(Reg::gpr(9))
//!     .mem(MemRef::slot(MemSpace::Heap, 0)));
//! b.push(Inst::new(Opcode::Add).def(Reg::gpr(2)).use_(Reg::gpr(1)).use_(Reg::gpr(1)));
//!
//! let fv = FeatureVector::extract(&b);
//! assert_eq!(fv.get(FeatureKind::BbLen), 2.0);
//! assert_eq!(fv.get(FeatureKind::Loads), 0.5);
//! assert_eq!(fv.get(FeatureKind::Integers), 0.5);
//! ```

use std::fmt;
use wts_ir::{BasicBlock, Category, Inst};

/// One of the thirteen features of Table 1, or one of the four
/// trace-shape features of the superblock scope.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FeatureKind {
    /// Number of instructions in the block.
    BbLen,
    /// Fraction of branch instructions.
    Branches,
    /// Fraction of calls.
    Calls,
    /// Fraction of loads.
    Loads,
    /// Fraction of stores.
    Stores,
    /// Fraction of returns.
    Returns,
    /// Fraction using an integer functional unit.
    Integers,
    /// Fraction using the floating-point unit.
    Floats,
    /// Fraction using the system unit.
    Systems,
    /// Fraction of potentially-excepting instructions.
    Peis,
    /// Fraction of GC points.
    GcPoints,
    /// Fraction of thread-switch points.
    TsPoints,
    /// Fraction of yield points.
    YieldPoints,
    /// Number of blocks merged into the trace (`1` for a basic block).
    TraceWidth,
    /// Number of internal conditional side exits (`0` for a basic block).
    SideExits,
    /// Number of speculation candidates — pure, non-hazardous
    /// instructions below the first side exit that the speculative
    /// scheduler may hoist (`0` for a basic block).
    SpecInsts,
    /// Concatenated instruction count of the trace (equals `bbLen` for a
    /// basic block).
    TraceLen,
}

impl FeatureKind {
    /// All features: `bbLen` first, then Table 1 category order, then
    /// the four trace-shape features of the superblock scope.
    pub const ALL: [FeatureKind; 17] = [
        FeatureKind::BbLen,
        FeatureKind::Branches,
        FeatureKind::Calls,
        FeatureKind::Loads,
        FeatureKind::Stores,
        FeatureKind::Returns,
        FeatureKind::Integers,
        FeatureKind::Floats,
        FeatureKind::Systems,
        FeatureKind::Peis,
        FeatureKind::GcPoints,
        FeatureKind::TsPoints,
        FeatureKind::YieldPoints,
        FeatureKind::TraceWidth,
        FeatureKind::SideExits,
        FeatureKind::SpecInsts,
        FeatureKind::TraceLen,
    ];

    /// Number of features.
    pub const COUNT: usize = 17;

    /// Number of category-backed fraction features (the twelve Table 1
    /// categories; `bbLen` and the trace-shape features need no
    /// per-instruction tallying pass).
    pub const CATEGORY_COUNT: usize = 12;

    /// The feature at dense index `i` (inverse of [`FeatureKind::index`]).
    pub fn from_index(i: usize) -> Option<FeatureKind> {
        FeatureKind::ALL.get(i).copied()
    }

    /// Dense index into a [`FeatureVector`].
    pub fn index(self) -> usize {
        self as usize
    }

    /// The name used in induced rules (Figure 4 uses `bbLen`, `calls`, …).
    pub fn rule_name(self) -> &'static str {
        match self {
            FeatureKind::BbLen => "bbLen",
            FeatureKind::Branches => "branches",
            FeatureKind::Calls => "calls",
            FeatureKind::Loads => "loads",
            FeatureKind::Stores => "stores",
            FeatureKind::Returns => "returns",
            FeatureKind::Integers => "integers",
            FeatureKind::Floats => "floats",
            FeatureKind::Systems => "systems",
            FeatureKind::Peis => "peis",
            FeatureKind::GcPoints => "gcpoints",
            FeatureKind::TsPoints => "tspoints",
            FeatureKind::YieldPoints => "yieldpoints",
            FeatureKind::TraceWidth => "traceWidth",
            FeatureKind::SideExits => "sideExits",
            FeatureKind::SpecInsts => "specInsts",
            FeatureKind::TraceLen => "traceLen",
        }
    }

    /// The feature whose [`rule_name`](FeatureKind::rule_name) is `name`
    /// — the inverse used when introspecting rule-set vocabularies.
    pub fn from_rule_name(name: &str) -> Option<FeatureKind> {
        FeatureKind::ALL.into_iter().find(|k| k.rule_name() == name)
    }

    /// True for count-valued features (`bbLen` and the trace-shape
    /// features): non-negative but not bounded by `[0, 1]`.
    pub fn is_count(self) -> bool {
        matches!(
            self,
            FeatureKind::BbLen
                | FeatureKind::TraceWidth
                | FeatureKind::SideExits
                | FeatureKind::SpecInsts
                | FeatureKind::TraceLen
        )
    }

    /// True for the four trace-shape features of the superblock scope.
    pub fn is_trace_shape(self) -> bool {
        matches!(
            self,
            FeatureKind::TraceWidth | FeatureKind::SideExits | FeatureKind::SpecInsts | FeatureKind::TraceLen
        )
    }

    /// The category a fraction feature counts, `None` for `bbLen`.
    pub fn category(self) -> Option<Category> {
        match self {
            FeatureKind::BbLen => None,
            FeatureKind::Branches => Some(Category::Branch),
            FeatureKind::Calls => Some(Category::Call),
            FeatureKind::Loads => Some(Category::Load),
            FeatureKind::Stores => Some(Category::Store),
            FeatureKind::Returns => Some(Category::Return),
            FeatureKind::Integers => Some(Category::Integer),
            FeatureKind::Floats => Some(Category::Float),
            FeatureKind::Systems => Some(Category::System),
            FeatureKind::Peis => Some(Category::Pei),
            FeatureKind::GcPoints => Some(Category::GcPoint),
            FeatureKind::TsPoints => Some(Category::ThreadSwitch),
            FeatureKind::YieldPoints => Some(Category::Yield),
            FeatureKind::TraceWidth | FeatureKind::SideExits | FeatureKind::SpecInsts | FeatureKind::TraceLen => None,
        }
    }
}

impl fmt::Display for FeatureKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.rule_name())
    }
}

/// A demand set over the seventeen features, as a bitmask.
///
/// Induced rule sets rarely read more than a handful of features; a mask
/// records exactly which ones a filter will consult so extraction can
/// skip the rest ([`FeatureVector::extract_masked`]). Masks are tiny
/// `Copy` values and compose with [`union`](FeatureMask::union).
///
/// # Examples
///
/// ```
/// use wts_features::{FeatureKind, FeatureMask};
/// let m = FeatureMask::EMPTY.with(FeatureKind::BbLen).with(FeatureKind::Loads);
/// assert!(m.contains(FeatureKind::Loads));
/// assert!(!m.contains(FeatureKind::Calls));
/// assert_eq!(m.count(), 2);
/// assert_eq!(m.category_count(), 1, "bbLen needs no instruction pass");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct FeatureMask(u32);

impl FeatureMask {
    /// The empty demand set.
    pub const EMPTY: FeatureMask = FeatureMask(0);

    /// Every feature demanded (full Table 1 + trace-shape extraction).
    pub const ALL: FeatureMask = FeatureMask((1 << FeatureKind::COUNT) - 1);

    /// A mask demanding exactly the given features.
    pub fn of(kinds: impl IntoIterator<Item = FeatureKind>) -> FeatureMask {
        kinds.into_iter().fold(FeatureMask::EMPTY, FeatureMask::with)
    }

    /// This mask plus one more feature.
    pub fn with(self, kind: FeatureKind) -> FeatureMask {
        FeatureMask(self.0 | (1 << kind.index()))
    }

    /// True when `kind` is demanded.
    pub fn contains(self, kind: FeatureKind) -> bool {
        self.0 & (1 << kind.index()) != 0
    }

    /// The union of two demand sets.
    pub fn union(self, other: FeatureMask) -> FeatureMask {
        FeatureMask(self.0 | other.0)
    }

    /// True when nothing is demanded.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Number of demanded features.
    pub fn count(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Number of demanded *category* features — the ones that actually
    /// need the per-instruction tallying pass. `bbLen` is free (the
    /// block already knows its length), and the trace-shape features are
    /// free too: the trace former tallies width, side exits and
    /// speculation candidates as byproducts of concatenation.
    pub fn category_count(self) -> usize {
        self.kinds().filter(|k| k.category().is_some()).count()
    }

    /// The demanded features, in Table 1 order.
    pub fn kinds(self) -> impl Iterator<Item = FeatureKind> {
        FeatureKind::ALL.into_iter().filter(move |k| self.contains(*k))
    }

    /// Deterministic work proxy for extracting this demand set from a
    /// block of `bb_len` instructions, on the same scale as the trace
    /// collector's full-extraction proxy (which charges one unit per
    /// instruction for all twelve category tallies): a mask demanding
    /// `k` categories costs `1 + ceil(bb_len * k / 12)` — one unit of
    /// setup plus the pro-rated share of the tallying pass — and a mask
    /// demanding no categories costs zero: `bbLen` is known without
    /// touching instructions, and the trace-shape features are tallied
    /// by the trace former during concatenation, not by extraction.
    pub fn extraction_work(self, bb_len: u64) -> u64 {
        let k = self.category_count() as u64;
        if k == 0 {
            return 0;
        }
        1 + (bb_len * k).div_ceil(FeatureKind::CATEGORY_COUNT as u64)
    }
}

impl fmt::Display for FeatureMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, kind) in self.kinds().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{kind}")?;
        }
        write!(f, "}}")
    }
}

/// The trace-shape bookkeeping of one scheduling scope unit: how many
/// blocks merged into it, how many internal side exits it carries, and
/// how many instructions below the first side exit are speculation
/// candidates. A plain basic block is the degenerate shape
/// [`TraceShape::block`] (`width 1, 0 exits, 0 candidates`), which keeps
/// block-scope and width-1 superblock-scope feature vectors
/// bit-identical.
///
/// The trace former produces these as byproducts of concatenation —
/// that is why the trace-shape features cost nothing in
/// [`FeatureMask::extraction_work`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceShape {
    /// Number of merged blocks.
    pub width: u32,
    /// Internal conditional side exits.
    pub side_exits: u32,
    /// Speculation candidates below the first side exit.
    pub spec_insts: u32,
}

impl TraceShape {
    /// The degenerate shape of a plain basic block.
    pub fn block() -> TraceShape {
        TraceShape { width: 1, side_exits: 0, spec_insts: 0 }
    }

    /// Measures a formed trace's shape in one pass: a *side exit* is a
    /// branch instruction that is not the trace's final instruction, and
    /// a *speculation candidate* is a pure (no side effect), non-hazardous
    /// instruction located after the first side exit — exactly the
    /// instructions the speculative dependence graph frees to hoist.
    pub fn of_trace(insts: &[Inst], width: u32) -> TraceShape {
        let mut side_exits = 0u32;
        let mut spec_insts = 0u32;
        for (i, inst) in insts.iter().enumerate() {
            let op = inst.opcode();
            if op.is_branch() && i + 1 != insts.len() {
                side_exits += 1;
            } else if side_exits > 0 && !op.has_side_effect() && !inst.is_hazardous() {
                spec_insts += 1;
            }
        }
        TraceShape { width, side_exits, spec_insts }
    }
}

/// The feature vector of one basic block or superblock trace.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FeatureVector {
    values: [f64; FeatureKind::COUNT],
}

impl FeatureVector {
    /// Extracts the features of `block` in a single pass.
    pub fn extract(block: &BasicBlock) -> FeatureVector {
        FeatureVector::from_insts(block.insts())
    }

    /// Extracts the features of an instruction slice.
    pub fn from_insts(insts: &[Inst]) -> FeatureVector {
        FeatureVector::from_insts_masked(insts, FeatureMask::ALL)
    }

    /// Demand-driven extraction: the features of `block` restricted to
    /// `mask`, in a single pass that only tallies the demanded
    /// instruction categories. Demanded features carry exactly the same
    /// values as full extraction (same counts, same division); every
    /// other slot is left at `0.0`.
    pub fn extract_masked(block: &BasicBlock, mask: FeatureMask) -> FeatureVector {
        FeatureVector::from_insts_masked(block.insts(), mask)
    }

    /// [`extract_masked`](FeatureVector::extract_masked) over a raw
    /// instruction slice, with the degenerate block shape.
    pub fn from_insts_masked(insts: &[Inst], mask: FeatureMask) -> FeatureVector {
        FeatureVector::from_insts_shaped(insts, TraceShape::block(), mask)
    }

    /// The fully general extraction: an instruction slice plus its
    /// [`TraceShape`], restricted to `mask`. This is the superblock
    /// pipeline's entry point — `bbLen`/`traceLen` are the concatenated
    /// length, the category fractions are over the whole trace, and the
    /// trace-shape features come from the shape bookkeeping. On an empty
    /// slice every feature is `0.0`, matching the empty-block contract.
    pub fn from_insts_shaped(insts: &[Inst], shape: TraceShape, mask: FeatureMask) -> FeatureVector {
        // The demanded categories, gathered once so the per-instruction
        // loop touches only what the mask asks for.
        let mut demanded = [(FeatureKind::BbLen, Category::Branch); FeatureKind::CATEGORY_COUNT];
        let mut k = 0;
        for kind in mask.kinds() {
            if let Some(c) = kind.category() {
                demanded[k] = (kind, c);
                k += 1;
            }
        }
        let mut counts = [0usize; FeatureKind::COUNT];
        if k > 0 {
            for inst in insts {
                let cats = inst.categories();
                for &(kind, c) in &demanded[..k] {
                    if cats.contains(c) {
                        counts[kind.index()] += 1;
                    }
                }
            }
        }
        let n = insts.len();
        let mut values = [0.0; FeatureKind::COUNT];
        if mask.contains(FeatureKind::BbLen) {
            values[FeatureKind::BbLen.index()] = n as f64;
        }
        if n > 0 {
            for &(kind, _) in &demanded[..k] {
                values[kind.index()] = counts[kind.index()] as f64 / n as f64;
            }
            // Trace-shape features: formation byproducts, free to fill.
            if mask.contains(FeatureKind::TraceWidth) {
                values[FeatureKind::TraceWidth.index()] = shape.width as f64;
            }
            if mask.contains(FeatureKind::SideExits) {
                values[FeatureKind::SideExits.index()] = shape.side_exits as f64;
            }
            if mask.contains(FeatureKind::SpecInsts) {
                values[FeatureKind::SpecInsts.index()] = shape.spec_insts as f64;
            }
            if mask.contains(FeatureKind::TraceLen) {
                values[FeatureKind::TraceLen.index()] = n as f64;
            }
        }
        FeatureVector { values }
    }

    /// Builds a vector from raw values (for tests and synthetic data).
    ///
    /// # Panics
    ///
    /// Panics if any fraction feature is outside `[0, 1]` or any
    /// count-valued feature (`bbLen` and the trace-shape features) is
    /// negative.
    pub fn from_values(values: [f64; FeatureKind::COUNT]) -> FeatureVector {
        for kind in FeatureKind::ALL {
            let v = values[kind.index()];
            if kind.is_count() {
                assert!(v >= 0.0, "{kind} count {v} must be non-negative");
            } else {
                assert!((0.0..=1.0).contains(&v), "{kind} fraction {v} outside [0,1]");
            }
        }
        FeatureVector { values }
    }

    /// Builds a vector from a slice in [`FeatureKind::index`] order —
    /// the layout dataset instances and rule attributes use — with the
    /// same validation as [`from_values`](FeatureVector::from_values).
    ///
    /// # Panics
    ///
    /// Panics if the slice is not exactly [`FeatureKind::COUNT`] long or
    /// any value fails the range checks.
    pub fn from_slice(values: &[f64]) -> FeatureVector {
        let values: [f64; FeatureKind::COUNT] = values
            .try_into()
            .unwrap_or_else(|_| panic!("expected {} feature values, got {}", FeatureKind::COUNT, values.len()));
        FeatureVector::from_values(values)
    }

    /// Value of one feature.
    pub fn get(&self, kind: FeatureKind) -> f64 {
        self.values[kind.index()]
    }

    /// All values, indexed by [`FeatureKind::index`].
    pub fn as_slice(&self) -> &[f64] {
        &self.values
    }

    /// The block size (`bbLen`) as an integer.
    pub fn bb_len(&self) -> usize {
        // Extraction stores bbLen as a non-negative whole instruction
        // count, far below f64's exact-integer range.
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let len = self.values[FeatureKind::BbLen.index()] as usize;
        len
    }
}

impl fmt::Display for FeatureVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, kind) in FeatureKind::ALL.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{}={:.3}", kind, self.get(*kind))?;
        }
        write!(f, "]")
    }
}

/// Equal-width binner for continuous features, supporting the paper's
/// advice to "bin continuous values" when it helps the learner (§2.1).
///
/// # Examples
///
/// ```
/// use wts_features::Binner;
/// let b = Binner::new(4);
/// assert_eq!(b.bin(0.0), 0);
/// assert_eq!(b.bin(0.30), 1);
/// assert_eq!(b.bin(1.0), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Binner {
    bins: u32,
}

impl Binner {
    /// A binner with the given number of equal-width bins over `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `bins` is zero.
    pub fn new(bins: u32) -> Binner {
        assert!(bins >= 1, "need at least one bin");
        Binner { bins }
    }

    /// The bin of `v` (values are clamped to `[0, 1]` first).
    pub fn bin(&self, v: f64) -> u32 {
        let v = v.clamp(0.0, 1.0);
        // The clamp bounds the product to [0, bins], so the cast is
        // non-negative and in range; the min handles v == 1.0.
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let b = (v * f64::from(self.bins)) as u32;
        b.min(self.bins - 1)
    }

    /// The midpoint of bin `b`, for mapping back to feature space.
    pub fn midpoint(&self, b: u32) -> f64 {
        (b.min(self.bins - 1) as f64 + 0.5) / self.bins as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wts_ir::{Hazards, MemRef, MemSpace, Opcode, Reg};

    fn block(insts: Vec<Inst>) -> BasicBlock {
        let mut b = BasicBlock::new(0);
        for i in insts {
            b.push(i);
        }
        b
    }

    #[test]
    fn empty_block_is_all_zero() {
        let fv = FeatureVector::extract(&block(vec![]));
        for kind in FeatureKind::ALL {
            assert_eq!(fv.get(kind), 0.0, "{kind}");
        }
    }

    #[test]
    fn bb_len_counts_instructions() {
        let fv = FeatureVector::extract(&block(vec![
            Inst::new(Opcode::Li).def(Reg::gpr(1)).imm(0),
            Inst::new(Opcode::Li).def(Reg::gpr(2)).imm(0),
            Inst::new(Opcode::Li).def(Reg::gpr(3)).imm(0),
        ]));
        assert_eq!(fv.get(FeatureKind::BbLen), 3.0);
        assert_eq!(fv.bb_len(), 3);
        assert_eq!(fv.get(FeatureKind::Integers), 1.0);
    }

    #[test]
    fn fractions_match_paper_example_style() {
        // 2 loads, 1 fp, 1 store: loads 50%, floats 25%, stores 25%.
        let fv = FeatureVector::extract(&block(vec![
            Inst::new(Opcode::Lwz).def(Reg::gpr(1)).use_(Reg::gpr(9)).mem(MemRef::slot(MemSpace::Heap, 0)),
            Inst::new(Opcode::Lfd).def(Reg::fpr(1)).use_(Reg::gpr(9)).mem(MemRef::slot(MemSpace::Heap, 8)),
            Inst::new(Opcode::Fadd).def(Reg::fpr(2)).use_(Reg::fpr(1)).use_(Reg::fpr(1)),
            Inst::new(Opcode::Stfd).use_(Reg::fpr(2)).use_(Reg::gpr(9)).mem(MemRef::slot(MemSpace::Heap, 16)),
        ]));
        assert_eq!(fv.get(FeatureKind::Loads), 0.5);
        assert_eq!(fv.get(FeatureKind::Floats), 0.25);
        assert_eq!(fv.get(FeatureKind::Stores), 0.25);
        assert_eq!(fv.get(FeatureKind::Integers), 0.0);
    }

    #[test]
    fn overlapping_categories_both_counted() {
        let fv = FeatureVector::extract(&block(vec![Inst::new(Opcode::Lwz)
            .def(Reg::gpr(1))
            .use_(Reg::gpr(9))
            .mem(MemRef::unknown(MemSpace::Heap))
            .hazard(Hazards::PEI)]));
        assert_eq!(fv.get(FeatureKind::Loads), 1.0);
        assert_eq!(fv.get(FeatureKind::Peis), 1.0);
    }

    #[test]
    fn hazard_features_from_flags() {
        let fv = FeatureVector::extract(&block(vec![
            Inst::new(Opcode::YieldPoint).hazard(Hazards::YIELD | Hazards::GC_POINT | Hazards::THREAD_SWITCH),
            Inst::new(Opcode::Add).def(Reg::gpr(1)).use_(Reg::gpr(2)).use_(Reg::gpr(3)),
        ]));
        assert_eq!(fv.get(FeatureKind::YieldPoints), 0.5);
        assert_eq!(fv.get(FeatureKind::GcPoints), 0.5);
        assert_eq!(fv.get(FeatureKind::TsPoints), 0.5);
        assert_eq!(fv.get(FeatureKind::Systems), 0.5);
    }

    #[test]
    fn fractions_always_in_unit_interval() {
        let fv = FeatureVector::extract(&block(vec![
            Inst::new(Opcode::Bl).def(Reg::lr()).hazard(Hazards::GC_POINT),
            Inst::new(Opcode::Blr),
        ]));
        for kind in FeatureKind::ALL {
            if !kind.is_count() {
                let v = fv.get(kind);
                assert!((0.0..=1.0).contains(&v), "{kind}={v}");
            }
        }
        assert_eq!(fv.get(FeatureKind::Calls), 0.5);
        assert_eq!(fv.get(FeatureKind::Returns), 0.5);
    }

    #[test]
    fn block_extraction_fills_degenerate_trace_shape() {
        let fv = FeatureVector::extract(&block(vec![
            Inst::new(Opcode::Add).def(Reg::gpr(1)).use_(Reg::gpr(2)).use_(Reg::gpr(3)),
            Inst::new(Opcode::Bc).use_(Reg::cr(0)),
        ]));
        assert_eq!(fv.get(FeatureKind::TraceWidth), 1.0);
        assert_eq!(fv.get(FeatureKind::SideExits), 0.0, "the final branch is the exit, not a side exit");
        assert_eq!(fv.get(FeatureKind::SpecInsts), 0.0);
        assert_eq!(fv.get(FeatureKind::TraceLen), fv.get(FeatureKind::BbLen));
    }

    #[test]
    fn trace_shape_measures_side_exits_and_speculation_candidates() {
        // [add; bc] ++ [add; store; bc] ++ [add]: two internal side
        // exits; the adds below the first exit are candidates, the store
        // is not (side effect), the second bc is an exit itself.
        let insts = vec![
            Inst::new(Opcode::Add).def(Reg::gpr(1)).use_(Reg::gpr(2)).use_(Reg::gpr(3)),
            Inst::new(Opcode::Bc).use_(Reg::cr(0)),
            Inst::new(Opcode::Add).def(Reg::gpr(4)).use_(Reg::gpr(2)).use_(Reg::gpr(3)),
            Inst::new(Opcode::Stw).use_(Reg::gpr(4)).use_(Reg::gpr(30)).mem(MemRef::slot(MemSpace::Heap, 0)),
            Inst::new(Opcode::Bc).use_(Reg::cr(0)),
            Inst::new(Opcode::Add).def(Reg::gpr(5)).use_(Reg::gpr(2)).use_(Reg::gpr(3)),
        ];
        let shape = TraceShape::of_trace(&insts, 3);
        assert_eq!(shape, TraceShape { width: 3, side_exits: 2, spec_insts: 2 });
        let fv = FeatureVector::from_insts_shaped(&insts, shape, FeatureMask::ALL);
        assert_eq!(fv.get(FeatureKind::TraceWidth), 3.0);
        assert_eq!(fv.get(FeatureKind::SideExits), 2.0);
        assert_eq!(fv.get(FeatureKind::SpecInsts), 2.0);
        assert_eq!(fv.get(FeatureKind::TraceLen), 6.0);
        assert_eq!(fv.get(FeatureKind::BbLen), 6.0, "bbLen is the concatenated length at trace scope");
        // The Table 1 fractions are over the whole trace.
        assert_eq!(fv.get(FeatureKind::Branches), 2.0 / 6.0);
        // Shaped extraction with the block shape equals plain extraction.
        let plain = FeatureVector::from_insts(&insts);
        let shaped = FeatureVector::from_insts_shaped(&insts, TraceShape::block(), FeatureMask::ALL);
        assert_eq!(plain, shaped);
    }

    #[test]
    fn trace_shape_final_branch_is_not_a_side_exit() {
        let insts = vec![
            Inst::new(Opcode::Add).def(Reg::gpr(1)).use_(Reg::gpr(2)).use_(Reg::gpr(3)),
            Inst::new(Opcode::Bc).use_(Reg::cr(0)),
        ];
        assert_eq!(TraceShape::of_trace(&insts, 1), TraceShape::block());
    }

    #[test]
    fn rule_name_round_trips() {
        for kind in FeatureKind::ALL {
            assert_eq!(FeatureKind::from_rule_name(kind.rule_name()), Some(kind));
        }
        assert_eq!(FeatureKind::from_rule_name("nonesuch"), None);
        assert_eq!(FeatureKind::from_rule_name("traceWidth"), Some(FeatureKind::TraceWidth));
    }

    #[test]
    fn count_and_trace_shape_classification() {
        assert!(FeatureKind::BbLen.is_count() && !FeatureKind::BbLen.is_trace_shape());
        for kind in [FeatureKind::TraceWidth, FeatureKind::SideExits, FeatureKind::SpecInsts, FeatureKind::TraceLen] {
            assert!(kind.is_count() && kind.is_trace_shape() && kind.category().is_none(), "{kind}");
        }
        assert_eq!(FeatureKind::ALL.iter().filter(|k| k.category().is_some()).count(), FeatureKind::CATEGORY_COUNT);
    }

    #[test]
    fn trace_shape_features_are_free_to_extract() {
        let trace_only = FeatureMask::of([
            FeatureKind::TraceWidth,
            FeatureKind::SideExits,
            FeatureKind::SpecInsts,
            FeatureKind::TraceLen,
        ]);
        assert_eq!(trace_only.category_count(), 0);
        assert_eq!(trace_only.extraction_work(100), 0, "formation byproducts cost nothing at extraction");
        let mixed = trace_only.with(FeatureKind::Loads);
        assert_eq!(mixed.category_count(), 1);
        assert_eq!(
            mixed.extraction_work(24),
            FeatureMask::of([FeatureKind::Loads]).extraction_work(24),
            "only the category share is charged"
        );
    }

    #[test]
    fn from_values_validates() {
        let mut v = [0.0; FeatureKind::COUNT];
        v[FeatureKind::BbLen.index()] = 5.0;
        v[FeatureKind::Loads.index()] = 0.4;
        let fv = FeatureVector::from_values(v);
        assert_eq!(fv.get(FeatureKind::Loads), 0.4);
    }

    #[test]
    #[should_panic(expected = "outside [0,1]")]
    fn from_values_rejects_bad_fraction() {
        let mut v = [0.0; FeatureKind::COUNT];
        v[FeatureKind::Loads.index()] = 1.5;
        FeatureVector::from_values(v);
    }

    #[test]
    fn feature_indices_are_dense() {
        for (i, k) in FeatureKind::ALL.iter().enumerate() {
            assert_eq!(k.index(), i);
        }
        assert_eq!(FeatureKind::COUNT, FeatureKind::ALL.len());
    }

    #[test]
    fn rule_names_match_figure4_vocabulary() {
        assert_eq!(FeatureKind::BbLen.rule_name(), "bbLen");
        assert_eq!(FeatureKind::Calls.rule_name(), "calls");
        assert_eq!(FeatureKind::YieldPoints.rule_name(), "yieldpoints");
    }

    #[test]
    fn binner_edges() {
        let b = Binner::new(10);
        assert_eq!(b.bin(-0.5), 0);
        assert_eq!(b.bin(0.05), 0);
        assert_eq!(b.bin(0.95), 9);
        assert_eq!(b.bin(2.0), 9);
        assert!((b.midpoint(0) - 0.05).abs() < 1e-12);
    }

    #[test]
    fn display_lists_all_features() {
        let fv = FeatureVector::default();
        let s = fv.to_string();
        assert!(s.contains("bbLen=") && s.contains("yieldpoints="));
    }

    #[test]
    fn mask_membership_and_counts() {
        let m = FeatureMask::of([FeatureKind::BbLen, FeatureKind::Loads, FeatureKind::Calls]);
        assert!(m.contains(FeatureKind::BbLen) && m.contains(FeatureKind::Loads));
        assert!(!m.contains(FeatureKind::Stores));
        assert_eq!(m.count(), 3);
        assert_eq!(m.category_count(), 2);
        assert_eq!(FeatureMask::ALL.count(), FeatureKind::COUNT);
        assert_eq!(FeatureMask::ALL.category_count(), FeatureKind::CATEGORY_COUNT);
        assert!(FeatureMask::EMPTY.is_empty());
        assert_eq!(m.to_string(), "{bbLen,calls,loads}");
        let kinds: Vec<FeatureKind> = m.kinds().collect();
        assert_eq!(kinds, [FeatureKind::BbLen, FeatureKind::Calls, FeatureKind::Loads], "Table 1 order");
        assert_eq!(FeatureMask::of(kinds), m, "of/kinds round-trip");
    }

    #[test]
    fn mask_union_composes() {
        let a = FeatureMask::of([FeatureKind::Loads]);
        let b = FeatureMask::of([FeatureKind::Stores]);
        assert_eq!(a.union(b), FeatureMask::of([FeatureKind::Loads, FeatureKind::Stores]));
        assert_eq!(a.union(FeatureMask::EMPTY), a);
    }

    #[test]
    fn masked_extraction_matches_full_on_demanded_features() {
        let b = block(vec![
            Inst::new(Opcode::Lwz).def(Reg::gpr(1)).use_(Reg::gpr(9)).mem(MemRef::slot(MemSpace::Heap, 0)),
            Inst::new(Opcode::Lfd).def(Reg::fpr(1)).use_(Reg::gpr(9)).mem(MemRef::slot(MemSpace::Heap, 8)),
            Inst::new(Opcode::Fadd).def(Reg::fpr(2)).use_(Reg::fpr(1)).use_(Reg::fpr(1)),
        ]);
        let full = FeatureVector::extract(&b);
        let mask = FeatureMask::of([FeatureKind::BbLen, FeatureKind::Loads]);
        let masked = FeatureVector::extract_masked(&b, mask);
        for kind in FeatureKind::ALL {
            if mask.contains(kind) {
                assert_eq!(masked.get(kind), full.get(kind), "{kind} must match full extraction exactly");
            } else {
                assert_eq!(masked.get(kind), 0.0, "{kind} was not demanded");
            }
        }
        assert_eq!(FeatureVector::extract_masked(&b, FeatureMask::ALL), full);
    }

    #[test]
    fn extraction_work_scales_with_demand() {
        assert_eq!(FeatureMask::EMPTY.extraction_work(100), 0);
        assert_eq!(FeatureMask::of([FeatureKind::BbLen]).extraction_work(100), 0, "bbLen is free");
        let two = FeatureMask::of([FeatureKind::Loads, FeatureKind::Stores]);
        let full = FeatureMask::ALL;
        assert!(two.extraction_work(24) < full.extraction_work(24));
        assert_eq!(full.extraction_work(24), 25, "full demand costs ~one unit per instruction");
        assert_eq!(two.extraction_work(24), 5);
        // Monotone in block length.
        assert!(two.extraction_work(48) > two.extraction_work(24));
    }
}
