//! Dependence DAG construction over basic blocks.
//!
//! The list scheduler may only permute a block into orders that respect
//! the block's dependences. Two instructions are dependent when they
//! access the same data (register or memory) with at least one writer, or
//! when at least one of them is a branch (paper §1.1). Hazardous
//! instructions — PEIs, GC points, thread-switch points and yield points —
//! "disallow reordering" (paper Table 1), which we model conservatively as
//! ordering barriers in the DAG.
//!
//! Note the division of labour: hazard constraints restrict the
//! *scheduler* (they live here), while the machine simulators in
//! `wts-machine` only model timing of a fixed order.
//!
//! # Examples
//!
//! ```
//! use wts_deps::DepGraph;
//! use wts_ir::{BasicBlock, Inst, Opcode, Reg};
//!
//! let mut b = BasicBlock::new(0);
//! b.push(Inst::new(Opcode::Li).def(Reg::gpr(1)).imm(1));
//! b.push(Inst::new(Opcode::Add).def(Reg::gpr(2)).use_(Reg::gpr(1)).use_(Reg::gpr(1)));
//! let g = DepGraph::build(b.insts());
//! assert!(g.has_edge(0, 1));
//! assert!(g.respects(&[0, 1]));
//! assert!(!g.respects(&[1, 0]));
//! ```

mod critical;
mod graph;

pub use critical::{critical_paths, critical_paths_into};
pub use graph::{DepGraph, DepKind, GraphBuilder};
