//! Weighted critical-path computation.

use crate::DepGraph;
use wts_ir::Inst;
use wts_machine::MachineConfig;

/// For every instruction, the latency-weighted length of the longest
/// dependence path from it to the end of the block — the tie-breaking
/// priority of the paper's CPS list scheduler ("the path of dependent
/// instructions that takes the longest to execute", §1.1).
///
/// Nodes contribute their own latency; edges contribute nothing. Since
/// every edge goes from a lower to a higher index, a single reverse sweep
/// suffices.
///
/// # Panics
///
/// Panics if `graph` was not built from `insts` (length mismatch).
///
/// # Examples
///
/// ```
/// use wts_deps::{critical_paths, DepGraph};
/// use wts_ir::{Inst, Opcode, Reg};
/// use wts_machine::MachineConfig;
///
/// let insts = vec![
///     Inst::new(Opcode::Lwz).def(Reg::gpr(1)).use_(Reg::gpr(9))
///         .mem(wts_ir::MemRef::slot(wts_ir::MemSpace::Heap, 0)),
///     Inst::new(Opcode::Add).def(Reg::gpr(2)).use_(Reg::gpr(1)).use_(Reg::gpr(1)),
/// ];
/// let g = DepGraph::build(&insts);
/// let m = MachineConfig::ppc7410();
/// let cp = critical_paths(&g, &insts, &m);
/// assert_eq!(cp[1], m.latency(Opcode::Add) as u64);
/// assert_eq!(cp[0], (m.latency(Opcode::Lwz) + m.latency(Opcode::Add)) as u64);
/// ```
pub fn critical_paths(graph: &DepGraph, insts: &[Inst], machine: &MachineConfig) -> Vec<u64> {
    let mut cp = Vec::new();
    critical_paths_into(graph, insts, machine, &mut cp);
    cp
}

/// Like [`critical_paths`], but fills a caller-provided buffer so batch
/// callers (the scheduler's scratch path) allocate nothing in steady
/// state. `cp`'s previous contents are discarded; its allocation is
/// reused.
///
/// # Panics
///
/// Panics if `graph` was not built from `insts` (length mismatch).
pub fn critical_paths_into(graph: &DepGraph, insts: &[Inst], machine: &MachineConfig, cp: &mut Vec<u64>) {
    assert_eq!(graph.len(), insts.len(), "graph/instruction length mismatch");
    let n = insts.len();
    cp.clear();
    cp.resize(n, 0);
    for i in (0..n).rev() {
        let lat = machine.latency(insts[i].opcode()) as u64;
        let best_succ = graph.succs(i).iter().map(|&(s, _)| cp[s as usize]).max().unwrap_or(0);
        cp[i] = lat + best_succ;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wts_ir::{MemRef, MemSpace, Opcode, Reg};

    fn machine() -> MachineConfig {
        MachineConfig::ppc7410()
    }

    #[test]
    fn empty_block() {
        let g = DepGraph::build(&[]);
        assert!(critical_paths(&g, &[], &machine()).is_empty());
    }

    #[test]
    fn independent_nodes_have_own_latency() {
        let insts = vec![
            Inst::new(Opcode::Add).def(Reg::gpr(1)).use_(Reg::gpr(8)).use_(Reg::gpr(9)),
            Inst::new(Opcode::Fadd).def(Reg::fpr(1)).use_(Reg::fpr(8)).use_(Reg::fpr(9)),
        ];
        let g = DepGraph::build(&insts);
        let m = machine();
        let cp = critical_paths(&g, &insts, &m);
        assert_eq!(cp[0], m.latency(Opcode::Add) as u64);
        assert_eq!(cp[1], m.latency(Opcode::Fadd) as u64);
    }

    #[test]
    fn chain_accumulates() {
        let insts = vec![
            Inst::new(Opcode::Fmul).def(Reg::fpr(1)).use_(Reg::fpr(0)).use_(Reg::fpr(0)),
            Inst::new(Opcode::Fadd).def(Reg::fpr(2)).use_(Reg::fpr(1)).use_(Reg::fpr(1)),
            Inst::new(Opcode::Stfd).use_(Reg::fpr(2)).use_(Reg::gpr(1)).mem(MemRef::slot(MemSpace::Heap, 0)),
        ];
        let g = DepGraph::build(&insts);
        let m = machine();
        let cp = critical_paths(&g, &insts, &m);
        let want = (m.latency(Opcode::Fmul) + m.latency(Opcode::Fadd) + m.latency(Opcode::Stfd)) as u64;
        assert_eq!(cp[0], want);
        assert!(cp[0] > cp[1] && cp[1] > cp[2]);
    }

    #[test]
    fn diamond_takes_longest_arm() {
        // root defs r1; two consumers (one slow fdiv chain via f-regs is
        // not possible on GPRs, so use mul vs add); a final join.
        let insts = vec![
            Inst::new(Opcode::Li).def(Reg::gpr(1)).imm(1),
            Inst::new(Opcode::Mullw).def(Reg::gpr(2)).use_(Reg::gpr(1)).use_(Reg::gpr(1)),
            Inst::new(Opcode::Addi).def(Reg::gpr(3)).use_(Reg::gpr(1)).imm(1),
            Inst::new(Opcode::Add).def(Reg::gpr(4)).use_(Reg::gpr(2)).use_(Reg::gpr(3)),
        ];
        let g = DepGraph::build(&insts);
        let m = machine();
        let cp = critical_paths(&g, &insts, &m);
        let slow_arm = (m.latency(Opcode::Mullw) + m.latency(Opcode::Add)) as u64;
        assert_eq!(cp[0], m.latency(Opcode::Li) as u64 + slow_arm);
    }
}
