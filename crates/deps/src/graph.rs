//! The dependence graph itself.
//!
//! Storage is compressed sparse row (CSR): one flat edge array plus an
//! offset table per direction, so a node's adjacency is a contiguous
//! slice and traversal touches no per-node heap allocations. Graphs are
//! produced by a reusable [`GraphBuilder`] whose scratch state — dense
//! per-register last-def/reader tables and a sort-and-dedup edge pass —
//! is allocated once and reused across the blocks of a method.

use wts_ir::{Inst, Reg};

/// Why one instruction must stay ordered after another.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DepKind {
    /// Read-after-write through a register.
    True,
    /// Write-after-read through a register.
    Anti,
    /// Write-after-write through a register.
    Output,
    /// Ordering between may-aliasing memory accesses.
    Memory,
    /// Ordering against a control transfer (branch, call, return).
    Control,
    /// Ordering against a hazardous instruction (PEI, GC point,
    /// thread-switch point, yield point) that disallows reordering.
    Hazard,
}

/// A dependence DAG over the instructions of one basic block.
///
/// Nodes are instruction indices in original program order; every edge
/// points from a lower to a higher index, so the graph is acyclic by
/// construction. Parallel edges of different kinds between the same pair
/// are collapsed, keeping the first (strongest) kind recorded.
///
/// Adjacency is stored CSR-style: `succs(i)` / `preds(i)` are slices of
/// flat arrays indexed through offset tables. Successor lists are sorted
/// by target; predecessor lists preserve discovery order (the order the
/// dependence scan recorded them), which downstream consumers — notably
/// the list scheduler's ready-queue insertion — rely on for bit-identical
/// schedules.
#[derive(Debug, Clone, Default)]
pub struct DepGraph {
    n: usize,
    pred_off: Vec<u32>,
    preds: Vec<(u32, DepKind)>,
    succ_off: Vec<u32>,
    succs: Vec<(u32, DepKind)>,
}

impl DepGraph {
    /// An empty graph, ready to be filled by
    /// [`GraphBuilder::build_into`]. Equivalent to building from zero
    /// instructions.
    pub fn empty() -> DepGraph {
        DepGraph::default()
    }

    /// Builds the DAG for `insts` (one block's instructions, program order).
    ///
    /// Convenience for one-shot use; batch callers should reuse a
    /// [`GraphBuilder`] across blocks instead.
    pub fn build(insts: &[Inst]) -> DepGraph {
        GraphBuilder::new().build(insts, false)
    }

    /// Builds a *speculative* DAG for superblock scheduling: branches
    /// order only with other side-effecting instructions (memory writes,
    /// calls, hazards, control), so pure register computation may move
    /// across the superblock's internal side exits. This models trace
    /// scheduling with compensation code (Fisher 1981), which the paper
    /// cites as the enabling technique and leaves as future work (§3.1).
    pub fn build_speculative(insts: &[Inst]) -> DepGraph {
        GraphBuilder::new().build(insts, true)
    }

    /// Number of instructions (nodes).
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when the block was empty.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Predecessors of `i` (instructions that must come before it).
    pub fn preds(&self, i: usize) -> &[(u32, DepKind)] {
        &self.preds[self.pred_off[i] as usize..self.pred_off[i + 1] as usize]
    }

    /// Successors of `i` (instructions that must come after it).
    pub fn succs(&self, i: usize) -> &[(u32, DepKind)] {
        &self.succs[self.succ_off[i] as usize..self.succ_off[i + 1] as usize]
    }

    /// True when an edge `from -> to` exists (any kind).
    pub fn has_edge(&self, from: usize, to: usize) -> bool {
        self.edge_kind(from, to).is_some()
    }

    /// Kind of the edge `from -> to`, if present.
    pub fn edge_kind(&self, from: usize, to: usize) -> Option<DepKind> {
        // Successor slices are sorted by target, so binary search works;
        // adjacency lists are short enough that this is mostly about not
        // scanning the occasional barrier node's long list.
        let s = self.succs(from);
        let to = u32::try_from(to).ok()?;
        s.binary_search_by_key(&to, |&(t, _)| t).ok().map(|k| s[k].1)
    }

    /// Total number of edges.
    pub fn edge_count(&self) -> usize {
        self.succs.len()
    }

    /// True when `order` is a permutation of `0..len` that respects every
    /// edge (each node appears after all its predecessors).
    pub fn respects(&self, order: &[usize]) -> bool {
        if order.len() != self.n {
            return false;
        }
        let mut pos = vec![usize::MAX; self.n];
        for (p, &i) in order.iter().enumerate() {
            if i >= self.n || pos[i] != usize::MAX {
                return false;
            }
            pos[i] = p;
        }
        for i in 0..self.n {
            for &(p, _) in self.preds(i) {
                if pos[p as usize] > pos[i] {
                    return false;
                }
            }
        }
        true
    }

    /// Indices whose predecessors are all in `scheduled` (given as a
    /// boolean membership mask) and that are not themselves scheduled.
    pub fn ready(&self, scheduled: &[bool]) -> Vec<usize> {
        assert_eq!(scheduled.len(), self.n, "mask length mismatch");
        (0..self.n).filter(|&i| !scheduled[i] && self.preds(i).iter().all(|&(p, _)| scheduled[p as usize])).collect()
    }
}

/// Sentinel for "no entry" in the dense per-register tables.
const NONE: u32 = u32::MAX;

/// One recorded (possibly-duplicate) dependence edge; `seq` is the
/// global record order, used to keep the first kind when deduplicating
/// and to preserve predecessor discovery order.
#[derive(Clone, Copy)]
struct RawEdge {
    from: u32,
    to: u32,
    seq: u32,
    kind: DepKind,
}

/// Reusable dependence-scan state.
///
/// All scratch — the raw edge list, the dense per-register last-def and
/// reader tables (indexed by [`Reg::dense_key`], validated by an epoch
/// counter so clearing a block is O(1)), the store/load/barrier work
/// lists — is allocated once and reused, so building the graphs of a
/// whole method performs no steady-state heap allocation.
///
/// # Examples
///
/// ```
/// use wts_deps::{DepGraph, GraphBuilder};
/// use wts_ir::{Inst, Opcode, Reg};
///
/// let block = [Inst::new(Opcode::Li).def(Reg::gpr(1)).imm(1)];
/// let mut builder = GraphBuilder::new();
/// let mut graph = DepGraph::empty();
/// builder.build_into(&block, false, &mut graph);
/// assert_eq!(graph.len(), 1);
/// assert_eq!(builder.last_edge_count(), graph.edge_count());
/// ```
pub struct GraphBuilder {
    edges: Vec<RawEdge>,
    /// Current block's epoch; table entries from other epochs are stale.
    epoch: u64,
    /// Per-register index of the last defining instruction.
    last_def: Vec<(u64, u32)>,
    /// Per-register head/tail into `reader_pool` for uses since the last
    /// def, in use order.
    readers: Vec<(u64, u32, u32)>,
    /// Linked-list pool backing the per-register reader lists:
    /// `(reader index, next pool slot)`.
    reader_pool: Vec<(u32, u32)>,
    stores: Vec<u32>,
    loads_since_store: Vec<u32>,
    since_barrier: Vec<u32>,
    last_edges: usize,
}

impl GraphBuilder {
    /// A fresh builder. The dense register tables grow on demand up to
    /// [`Reg::dense_limit`] entries and are then reused across blocks,
    /// so construction is cheap and steady-state builds allocate nothing.
    pub fn new() -> GraphBuilder {
        GraphBuilder {
            edges: Vec::new(),
            epoch: 0,
            last_def: Vec::new(),
            readers: Vec::new(),
            reader_pool: Vec::new(),
            stores: Vec::new(),
            loads_since_store: Vec::new(),
            since_barrier: Vec::new(),
            last_edges: 0,
        }
    }

    /// Grows the dense register tables to cover `key`. Stale (previous
    /// epoch) fill values are fine: the epoch check treats them as absent.
    fn ensure_key(&mut self, key: usize) {
        debug_assert!(key < Reg::dense_limit());
        if key >= self.last_def.len() {
            self.last_def.resize(key + 1, (0, NONE));
            self.readers.resize(key + 1, (0, NONE, NONE));
        }
    }

    /// Number of edges in the most recently built graph. Lets callers
    /// that only need the edge count (e.g. work-proxy accounting) avoid
    /// keeping the graph alive.
    pub fn last_edge_count(&self) -> usize {
        self.last_edges
    }

    /// Builds into a fresh graph. Prefer [`GraphBuilder::build_into`]
    /// when a graph buffer can be reused.
    pub fn build(&mut self, insts: &[Inst], speculative: bool) -> DepGraph {
        let mut g = DepGraph::empty();
        self.build_into(insts, speculative, &mut g);
        g
    }

    /// Runs the dependence scan for one block's instructions, replacing
    /// `out`'s contents. `out`'s allocations are reused.
    pub fn build_into(&mut self, insts: &[Inst], speculative: bool, out: &mut DepGraph) {
        let n = insts.len();
        self.epoch += 1;
        self.edges.clear();
        self.reader_pool.clear();
        self.stores.clear();
        self.loads_since_store.clear();
        self.since_barrier.clear();
        // Control transfers and hazardous instructions are reorder
        // barriers: chain everything between consecutive barriers. In
        // speculative mode, plain branches only order against
        // side-effecting or hazardous instructions — pure register
        // computation may cross a superblock's internal side exits.
        let mut last_barrier: Option<u32> = None;
        let mut last_branch: Option<u32> = None;

        for (idx, inst) in insts.iter().enumerate() {
            let i = u32::try_from(idx).expect("blocks are far below u32::MAX insts");
            let op = inst.opcode();

            for u in inst.uses() {
                let key = u.dense_key();
                self.ensure_key(key);
                if let Some(d) = self.lookup_def(key) {
                    self.edge(d, i, DepKind::True);
                }
                self.push_reader(key, i);
            }
            for d in inst.defs() {
                let key = d.dense_key();
                self.ensure_key(key);
                if let Some(p) = self.lookup_def(key) {
                    self.edge(p, i, DepKind::Output);
                }
                // Walk the reader list in use order; no clone needed since
                // the pool and the edge list are disjoint.
                let (epoch, mut cursor, _) = self.readers[key];
                if epoch != self.epoch {
                    cursor = NONE;
                }
                while cursor != NONE {
                    let (r, next) = self.reader_pool[cursor as usize];
                    if r != i {
                        self.edge(r, i, DepKind::Anti);
                    }
                    cursor = next;
                }
            }
            if let Some(m) = inst.mem_ref() {
                for k in 0..self.stores.len() {
                    let s = self.stores[k];
                    let sm = insts[s as usize].mem_ref().expect("stores carry mem refs");
                    if m.may_alias(sm) {
                        self.edge(s, i, DepKind::Memory);
                    }
                }
                if op.is_store() {
                    for k in 0..self.loads_since_store.len() {
                        let l = self.loads_since_store[k];
                        let lm = insts[l as usize].mem_ref().expect("loads carry mem refs");
                        if m.may_alias(lm) {
                            self.edge(l, i, DepKind::Memory);
                        }
                    }
                }
            }

            // Speculative mode downgrades plain branches (not calls or
            // returns, which clobber machine state) to side-effect-only
            // barriers.
            let is_full_barrier = if speculative {
                op.is_call() || op.is_return() || inst.is_hazardous()
            } else {
                op.is_control() || inst.is_hazardous()
            };
            let is_branch_barrier = speculative && op.is_branch();
            let effectful = inst.opcode().has_side_effect() || inst.is_hazardous();

            if let Some(b) = last_barrier {
                let kind = if insts[b as usize].opcode().is_control() { DepKind::Control } else { DepKind::Hazard };
                self.edge(b, i, kind);
            }
            if is_branch_barrier {
                if let Some(br) = last_branch {
                    self.edge(br, i, DepKind::Control);
                }
                for k in 0..self.since_barrier.len() {
                    let p = self.since_barrier[k];
                    let pi = &insts[p as usize];
                    if pi.opcode().has_side_effect() || pi.is_hazardous() {
                        self.edge(p, i, DepKind::Control);
                    }
                }
                last_branch = Some(i);
                self.since_barrier.push(i);
            } else if is_full_barrier {
                let kind = if op.is_control() { DepKind::Control } else { DepKind::Hazard };
                for k in 0..self.since_barrier.len() {
                    let p = self.since_barrier[k];
                    self.edge(p, i, kind);
                }
                last_barrier = Some(i);
                last_branch = None;
                self.since_barrier.clear();
            } else {
                if effectful {
                    if let Some(br) = last_branch {
                        self.edge(br, i, DepKind::Control);
                    }
                }
                self.since_barrier.push(i);
            }

            for d in inst.defs() {
                let key = d.dense_key();
                self.last_def[key] = (self.epoch, i);
                self.readers[key] = (self.epoch, NONE, NONE);
            }
            if op.is_store() {
                self.stores.push(i);
                self.loads_since_store.clear();
            } else if op.is_load() {
                self.loads_since_store.push(i);
            }
        }
        self.finish(n, out);
    }

    fn lookup_def(&self, key: usize) -> Option<u32> {
        let (epoch, d) = self.last_def[key];
        (epoch == self.epoch && d != NONE).then_some(d)
    }

    fn push_reader(&mut self, key: usize, i: u32) {
        let slot = u32::try_from(self.reader_pool.len()).expect("reader pool outgrew u32 indices");
        self.reader_pool.push((i, NONE));
        let entry = &mut self.readers[key];
        if entry.0 != self.epoch || entry.1 == NONE {
            *entry = (self.epoch, slot, slot);
        } else {
            self.reader_pool[entry.2 as usize].1 = slot;
            entry.2 = slot;
        }
    }

    fn edge(&mut self, from: u32, to: u32, kind: DepKind) {
        debug_assert!(from < to, "dependence edges must follow program order");
        let seq = u32::try_from(self.edges.len()).expect("edge list outgrew u32 sequence numbers");
        self.edges.push(RawEdge { from, to, seq, kind });
    }

    /// Deduplicates the raw edge list (first kind recorded per pair wins)
    /// and lays it out as CSR adjacency: successors sorted by target,
    /// predecessors in discovery order — exactly the orders the old
    /// nested-Vec representation produced by chronological pushes.
    fn finish(&mut self, n: usize, out: &mut DepGraph) {
        // Chronologically, a fixed source's successors were recorded in
        // ascending target order (the target is always the instruction
        // being scanned), so sorting by (from, to, seq) and keeping the
        // lowest seq per pair reproduces both the successor slice order
        // and the first-kind-wins dedup of the old hash-set path.
        self.edges.sort_unstable_by_key(|e| (e.from, e.to, e.seq));
        self.edges.dedup_by(|b, a| a.from == b.from && a.to == b.to);

        out.n = n;
        out.succ_off.clear();
        out.succs.clear();
        out.pred_off.clear();
        out.preds.clear();
        out.succ_off.resize(n + 1, 0);
        out.pred_off.resize(n + 1, 0);

        out.succs.reserve(self.edges.len());
        for e in &self.edges {
            out.succ_off[e.from as usize + 1] += 1;
            out.succs.push((e.to, e.kind));
        }
        for i in 0..n {
            out.succ_off[i + 1] += out.succ_off[i];
        }

        // Predecessor slices preserve the order the scan discovered the
        // edges (not ascending source), matching the old push order.
        self.edges.sort_unstable_by_key(|e| (e.to, e.seq));
        out.preds.reserve(self.edges.len());
        for e in &self.edges {
            out.pred_off[e.to as usize + 1] += 1;
            out.preds.push((e.from, e.kind));
        }
        for i in 0..n {
            out.pred_off[i + 1] += out.pred_off[i];
        }
        self.last_edges = self.edges.len();
    }
}

impl Default for GraphBuilder {
    fn default() -> GraphBuilder {
        GraphBuilder::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wts_ir::{Hazards, MemRef, MemSpace, Opcode};

    fn add(def: u16, a: u16, b: u16) -> Inst {
        Inst::new(Opcode::Add).def(Reg::gpr(def)).use_(Reg::gpr(a)).use_(Reg::gpr(b))
    }

    fn load(def: u16, slot: u32) -> Inst {
        Inst::new(Opcode::Lwz).def(Reg::gpr(def)).use_(Reg::gpr(30)).mem(MemRef::slot(MemSpace::Heap, slot))
    }

    fn store(src: u16, slot: u32) -> Inst {
        Inst::new(Opcode::Stw).use_(Reg::gpr(src)).use_(Reg::gpr(30)).mem(MemRef::slot(MemSpace::Heap, slot))
    }

    #[test]
    fn empty_graph() {
        let g = DepGraph::build(&[]);
        assert!(g.is_empty());
        assert_eq!(g.edge_count(), 0);
        assert!(g.respects(&[]));
    }

    #[test]
    fn true_dependence() {
        let g = DepGraph::build(&[add(1, 9, 9), add(2, 1, 9)]);
        assert_eq!(g.edge_kind(0, 1), Some(DepKind::True));
    }

    #[test]
    fn anti_dependence() {
        // i0 reads r1; i1 overwrites r1.
        let g = DepGraph::build(&[add(2, 1, 1), add(1, 9, 9)]);
        assert_eq!(g.edge_kind(0, 1), Some(DepKind::Anti));
    }

    #[test]
    fn output_dependence() {
        let g = DepGraph::build(&[add(1, 9, 9), add(1, 8, 8)]);
        assert_eq!(g.edge_kind(0, 1), Some(DepKind::Output));
    }

    #[test]
    fn independent_instructions_have_no_edge() {
        let g = DepGraph::build(&[add(1, 9, 9), add(2, 8, 8)]);
        assert_eq!(g.edge_count(), 0);
        assert!(g.respects(&[1, 0]));
    }

    #[test]
    fn memory_edges_respect_aliasing() {
        let g = DepGraph::build(&[store(1, 0), load(2, 0), load(3, 8)]);
        assert_eq!(g.edge_kind(0, 1), Some(DepKind::Memory), "aliasing load after store");
        assert!(!g.has_edge(0, 2), "disjoint slots are independent");
        assert!(!g.has_edge(1, 2), "loads do not order with loads");
    }

    #[test]
    fn store_after_load_is_ordered() {
        let g = DepGraph::build(&[load(2, 0), store(1, 0)]);
        assert_eq!(g.edge_kind(0, 1), Some(DepKind::Memory));
    }

    #[test]
    fn unknown_slot_aliases_everything_in_space() {
        let g = DepGraph::build(&[
            store(1, 0),
            Inst::new(Opcode::Lwz).def(Reg::gpr(2)).use_(Reg::gpr(30)).mem(MemRef::unknown(MemSpace::Heap)),
        ]);
        assert!(g.has_edge(0, 1));
    }

    #[test]
    fn branch_orders_with_everything() {
        let g = DepGraph::build(&[add(1, 9, 9), add(2, 8, 8), Inst::new(Opcode::Bc).use_(Reg::cr(0))]);
        assert_eq!(g.edge_kind(0, 2), Some(DepKind::Control));
        assert_eq!(g.edge_kind(1, 2), Some(DepKind::Control));
        assert!(g.respects(&[1, 0, 2]));
        assert!(!g.respects(&[0, 2, 1]));
    }

    #[test]
    fn call_is_a_barrier_both_ways() {
        let g = DepGraph::build(&[add(1, 9, 9), Inst::new(Opcode::Bl).def(Reg::lr()), add(2, 8, 8)]);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 2));
        assert!(!g.has_edge(0, 2), "barrier chaining keeps the graph sparse");
        assert!(!g.respects(&[2, 1, 0]));
        assert!(g.respects(&[0, 1, 2]));
    }

    #[test]
    fn hazard_disallows_reordering() {
        let pei = Inst::new(Opcode::Lwz)
            .def(Reg::gpr(5))
            .use_(Reg::gpr(30))
            .mem(MemRef::slot(MemSpace::Heap, 4))
            .hazard(Hazards::PEI);
        let g = DepGraph::build(&[add(1, 9, 9), pei, add(2, 8, 8)]);
        assert_eq!(g.edge_kind(0, 1), Some(DepKind::Hazard));
        assert_eq!(g.edge_kind(1, 2), Some(DepKind::Hazard));
    }

    #[test]
    fn ready_tracks_scheduled_mask() {
        let g = DepGraph::build(&[add(1, 9, 9), add(2, 1, 9), add(3, 8, 8)]);
        assert_eq!(g.ready(&[false, false, false]), vec![0, 2]);
        assert_eq!(g.ready(&[true, false, false]), vec![1, 2]);
        assert_eq!(g.ready(&[true, true, true]), Vec::<usize>::new());
    }

    #[test]
    fn respects_rejects_non_permutations() {
        let g = DepGraph::build(&[add(1, 9, 9), add(2, 8, 8)]);
        assert!(!g.respects(&[0]));
        assert!(!g.respects(&[0, 0]));
        assert!(!g.respects(&[0, 5]));
    }

    #[test]
    fn speculative_lets_alu_cross_branches() {
        let insts = vec![add(1, 9, 9), Inst::new(Opcode::Bc).use_(Reg::cr(0)), add(2, 8, 8)];
        let normal = DepGraph::build(&insts);
        assert!(normal.has_edge(0, 1) && normal.has_edge(1, 2));
        let spec = DepGraph::build_speculative(&insts);
        assert!(!spec.has_edge(0, 1), "pure add may sink below the branch");
        assert!(!spec.has_edge(1, 2), "pure add may hoist above the branch");
        assert!(spec.respects(&[0, 2, 1]));
        assert!(spec.respects(&[1, 0, 2]));
    }

    #[test]
    fn speculative_keeps_stores_ordered_with_branches() {
        let insts = vec![store(1, 0), Inst::new(Opcode::Bc).use_(Reg::cr(0)), store(2, 4)];
        let spec = DepGraph::build_speculative(&insts);
        assert!(spec.has_edge(0, 1), "stores may not sink below a side exit");
        assert!(spec.has_edge(1, 2), "stores may not hoist above a side exit");
    }

    #[test]
    fn speculative_keeps_branches_ordered() {
        let insts = vec![Inst::new(Opcode::Bc).use_(Reg::cr(0)), add(1, 9, 9), Inst::new(Opcode::Bc).use_(Reg::cr(0))];
        let spec = DepGraph::build_speculative(&insts);
        assert!(spec.has_edge(0, 2), "side exits stay in order");
        assert!(!spec.has_edge(0, 1));
    }

    #[test]
    fn speculative_calls_remain_full_barriers() {
        let insts = vec![add(1, 9, 9), Inst::new(Opcode::Bl).def(Reg::lr()), add(2, 8, 8)];
        let spec = DepGraph::build_speculative(&insts);
        assert!(spec.has_edge(0, 1));
        assert!(spec.has_edge(1, 2));
    }

    #[test]
    fn speculative_hazards_remain_full_barriers() {
        let pei = Inst::new(Opcode::NullCheck).use_(Reg::gpr(5)).hazard(Hazards::PEI);
        let insts = vec![add(1, 9, 9), pei, add(2, 8, 8)];
        let spec = DepGraph::build_speculative(&insts);
        assert!(spec.has_edge(0, 1));
        assert!(spec.has_edge(1, 2));
    }

    #[test]
    fn edges_are_deduplicated() {
        // i1 both truly depends on r1 and anti-depends via r2... build a
        // case with two reasons for the same edge.
        let i0 = Inst::new(Opcode::Add).def(Reg::gpr(1)).def(Reg::gpr(2)).use_(Reg::gpr(9)).use_(Reg::gpr(9));
        let i1 = add(3, 1, 2);
        let g = DepGraph::build(&[i0, i1]);
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn dedup_keeps_the_first_kind_recorded() {
        // i1 truly depends on i0 via r1 (recorded while scanning uses)
        // and anti-depends via r9 (recorded later, while scanning defs):
        // the True edge, recorded first, wins.
        let i0 = Inst::new(Opcode::Add).def(Reg::gpr(1)).use_(Reg::gpr(9)).use_(Reg::gpr(9));
        let i1 = Inst::new(Opcode::Add).def(Reg::gpr(9)).use_(Reg::gpr(1)).use_(Reg::gpr(1));
        let g = DepGraph::build(&[i0, i1]);
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.edge_kind(0, 1), Some(DepKind::True));
    }

    #[test]
    fn builder_reuse_across_blocks_is_clean() {
        // Same builder, different blocks: no state may leak between runs.
        let mut builder = GraphBuilder::new();
        let mut g = DepGraph::empty();

        builder.build_into(&[add(1, 9, 9), add(2, 1, 9)], false, &mut g);
        assert_eq!(g.edge_kind(0, 1), Some(DepKind::True));
        assert_eq!(builder.last_edge_count(), 1);

        // A block reusing the same registers with no dependence: the old
        // last-def/reader entries must not leak in.
        builder.build_into(&[add(1, 9, 9), add(2, 8, 8)], false, &mut g);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(builder.last_edge_count(), 0);

        builder.build_into(&[store(1, 0), load(2, 0)], false, &mut g);
        assert_eq!(g.edge_kind(0, 1), Some(DepKind::Memory));
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn builder_matches_one_shot_builds() {
        let blocks: Vec<Vec<Inst>> = vec![
            vec![add(1, 9, 9), add(2, 1, 9), store(2, 0), load(3, 0)],
            vec![load(1, 4), Inst::new(Opcode::Bc).use_(Reg::cr(0)), add(2, 1, 1)],
            vec![],
            vec![add(1, 1, 1)],
        ];
        let mut builder = GraphBuilder::new();
        let mut g = DepGraph::empty();
        for block in &blocks {
            for &speculative in &[false, true] {
                builder.build_into(block, speculative, &mut g);
                let fresh = if speculative { DepGraph::build_speculative(block) } else { DepGraph::build(block) };
                assert_eq!(g.edge_count(), fresh.edge_count());
                for i in 0..block.len() {
                    assert_eq!(g.preds(i), fresh.preds(i));
                    assert_eq!(g.succs(i), fresh.succs(i));
                }
            }
        }
    }
}
