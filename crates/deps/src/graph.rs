//! The dependence graph itself.

use std::collections::HashMap;
use wts_ir::{Inst, Reg};

/// Why one instruction must stay ordered after another.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DepKind {
    /// Read-after-write through a register.
    True,
    /// Write-after-read through a register.
    Anti,
    /// Write-after-write through a register.
    Output,
    /// Ordering between may-aliasing memory accesses.
    Memory,
    /// Ordering against a control transfer (branch, call, return).
    Control,
    /// Ordering against a hazardous instruction (PEI, GC point,
    /// thread-switch point, yield point) that disallows reordering.
    Hazard,
}

/// A dependence DAG over the instructions of one basic block.
///
/// Nodes are instruction indices in original program order; every edge
/// points from a lower to a higher index, so the graph is acyclic by
/// construction. Parallel edges of different kinds between the same pair
/// are collapsed, keeping the first (strongest) kind recorded.
#[derive(Debug, Clone)]
pub struct DepGraph {
    n: usize,
    preds: Vec<Vec<(u32, DepKind)>>,
    succs: Vec<Vec<(u32, DepKind)>>,
}

impl DepGraph {
    /// Builds the DAG for `insts` (one block's instructions, program order).
    pub fn build(insts: &[Inst]) -> DepGraph {
        Builder::new(insts.len(), false).run(insts)
    }

    /// Builds a *speculative* DAG for superblock scheduling: branches
    /// order only with other side-effecting instructions (memory writes,
    /// calls, hazards, control), so pure register computation may move
    /// across the superblock's internal side exits. This models trace
    /// scheduling with compensation code (Fisher 1981), which the paper
    /// cites as the enabling technique and leaves as future work (§3.1).
    pub fn build_speculative(insts: &[Inst]) -> DepGraph {
        Builder::new(insts.len(), true).run(insts)
    }

    /// Number of instructions (nodes).
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when the block was empty.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Predecessors of `i` (instructions that must come before it).
    pub fn preds(&self, i: usize) -> &[(u32, DepKind)] {
        &self.preds[i]
    }

    /// Successors of `i` (instructions that must come after it).
    pub fn succs(&self, i: usize) -> &[(u32, DepKind)] {
        &self.succs[i]
    }

    /// True when an edge `from -> to` exists (any kind).
    pub fn has_edge(&self, from: usize, to: usize) -> bool {
        self.succs[from].iter().any(|&(t, _)| t as usize == to)
    }

    /// Kind of the edge `from -> to`, if present.
    pub fn edge_kind(&self, from: usize, to: usize) -> Option<DepKind> {
        self.succs[from].iter().find(|&&(t, _)| t as usize == to).map(|&(_, k)| k)
    }

    /// Total number of edges.
    pub fn edge_count(&self) -> usize {
        self.succs.iter().map(Vec::len).sum()
    }

    /// True when `order` is a permutation of `0..len` that respects every
    /// edge (each node appears after all its predecessors).
    pub fn respects(&self, order: &[usize]) -> bool {
        if order.len() != self.n {
            return false;
        }
        let mut pos = vec![usize::MAX; self.n];
        for (p, &i) in order.iter().enumerate() {
            if i >= self.n || pos[i] != usize::MAX {
                return false;
            }
            pos[i] = p;
        }
        for i in 0..self.n {
            for &(p, _) in &self.preds[i] {
                if pos[p as usize] > pos[i] {
                    return false;
                }
            }
        }
        true
    }

    /// Indices whose predecessors are all in `scheduled` (given as a
    /// boolean membership mask) and that are not themselves scheduled.
    pub fn ready(&self, scheduled: &[bool]) -> Vec<usize> {
        assert_eq!(scheduled.len(), self.n, "mask length mismatch");
        (0..self.n).filter(|&i| !scheduled[i] && self.preds[i].iter().all(|&(p, _)| scheduled[p as usize])).collect()
    }
}

struct Builder {
    preds: Vec<Vec<(u32, DepKind)>>,
    succs: Vec<Vec<(u32, DepKind)>>,
    edge_set: HashMap<(u32, u32), ()>,
    speculative: bool,
}

impl Builder {
    fn new(n: usize, speculative: bool) -> Builder {
        Builder { preds: vec![Vec::new(); n], succs: vec![Vec::new(); n], edge_set: HashMap::new(), speculative }
    }

    fn edge(&mut self, from: u32, to: u32, kind: DepKind) {
        debug_assert!(from < to, "dependence edges must follow program order");
        if self.edge_set.insert((from, to), ()).is_none() {
            self.succs[from as usize].push((to, kind));
            self.preds[to as usize].push((from, kind));
        }
    }

    fn run(mut self, insts: &[Inst]) -> DepGraph {
        let n = insts.len();
        let mut last_def: HashMap<Reg, u32> = HashMap::new();
        let mut uses_since_def: HashMap<Reg, Vec<u32>> = HashMap::new();
        let mut stores: Vec<u32> = Vec::new();
        let mut loads_since_store: Vec<u32> = Vec::new();
        // Control transfers and hazardous instructions are reorder
        // barriers: chain everything between consecutive barriers. In
        // speculative mode, plain branches only order against
        // side-effecting or hazardous instructions — pure register
        // computation may cross a superblock's internal side exits.
        let mut last_barrier: Option<u32> = None;
        let mut since_barrier: Vec<u32> = Vec::new();
        let mut last_branch: Option<u32> = None;

        for (idx, inst) in insts.iter().enumerate() {
            let i = idx as u32;
            let op = inst.opcode();

            for u in inst.uses() {
                if let Some(&d) = last_def.get(u) {
                    self.edge(d, i, DepKind::True);
                }
                uses_since_def.entry(*u).or_default().push(i);
            }
            for d in inst.defs() {
                if let Some(&p) = last_def.get(d) {
                    self.edge(p, i, DepKind::Output);
                }
                if let Some(readers) = uses_since_def.get(d) {
                    for &r in readers.clone().iter() {
                        if r != i {
                            self.edge(r, i, DepKind::Anti);
                        }
                    }
                }
            }
            if let Some(m) = inst.mem_ref() {
                for &s in &stores {
                    let sm = insts[s as usize].mem_ref().expect("stores carry mem refs");
                    if m.may_alias(sm) {
                        self.edge(s, i, DepKind::Memory);
                    }
                }
                if op.is_store() {
                    for &l in &loads_since_store {
                        let lm = insts[l as usize].mem_ref().expect("loads carry mem refs");
                        if m.may_alias(lm) {
                            self.edge(l, i, DepKind::Memory);
                        }
                    }
                }
            }

            // Speculative mode downgrades plain branches (not calls or
            // returns, which clobber machine state) to side-effect-only
            // barriers.
            let is_full_barrier = if self.speculative {
                op.is_call() || op.is_return() || inst.is_hazardous()
            } else {
                op.is_control() || inst.is_hazardous()
            };
            let is_branch_barrier = self.speculative && op.is_branch();
            let effectful = inst.opcode().has_side_effect() || inst.is_hazardous();

            if let Some(b) = last_barrier {
                let kind = if insts[b as usize].opcode().is_control() { DepKind::Control } else { DepKind::Hazard };
                self.edge(b, i, kind);
            }
            if is_branch_barrier {
                if let Some(br) = last_branch {
                    self.edge(br, i, DepKind::Control);
                }
                for &p in &since_barrier {
                    let pi = &insts[p as usize];
                    if pi.opcode().has_side_effect() || pi.is_hazardous() {
                        self.edge(p, i, DepKind::Control);
                    }
                }
                last_branch = Some(i);
                since_barrier.push(i);
            } else if is_full_barrier {
                let kind = if op.is_control() { DepKind::Control } else { DepKind::Hazard };
                for &p in &since_barrier {
                    self.edge(p, i, kind);
                }
                last_barrier = Some(i);
                last_branch = None;
                since_barrier.clear();
            } else {
                if effectful {
                    if let Some(br) = last_branch {
                        self.edge(br, i, DepKind::Control);
                    }
                }
                since_barrier.push(i);
            }

            for d in inst.defs() {
                last_def.insert(*d, i);
                uses_since_def.insert(*d, Vec::new());
            }
            if op.is_store() {
                stores.push(i);
                loads_since_store.clear();
            } else if op.is_load() {
                loads_since_store.push(i);
            }
        }
        DepGraph { n, preds: self.preds, succs: self.succs }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wts_ir::{Hazards, MemRef, MemSpace, Opcode};

    fn add(def: u16, a: u16, b: u16) -> Inst {
        Inst::new(Opcode::Add).def(Reg::gpr(def)).use_(Reg::gpr(a)).use_(Reg::gpr(b))
    }

    fn load(def: u16, slot: u32) -> Inst {
        Inst::new(Opcode::Lwz).def(Reg::gpr(def)).use_(Reg::gpr(30)).mem(MemRef::slot(MemSpace::Heap, slot))
    }

    fn store(src: u16, slot: u32) -> Inst {
        Inst::new(Opcode::Stw).use_(Reg::gpr(src)).use_(Reg::gpr(30)).mem(MemRef::slot(MemSpace::Heap, slot))
    }

    #[test]
    fn empty_graph() {
        let g = DepGraph::build(&[]);
        assert!(g.is_empty());
        assert_eq!(g.edge_count(), 0);
        assert!(g.respects(&[]));
    }

    #[test]
    fn true_dependence() {
        let g = DepGraph::build(&[add(1, 9, 9), add(2, 1, 9)]);
        assert_eq!(g.edge_kind(0, 1), Some(DepKind::True));
    }

    #[test]
    fn anti_dependence() {
        // i0 reads r1; i1 overwrites r1.
        let g = DepGraph::build(&[add(2, 1, 1), add(1, 9, 9)]);
        assert_eq!(g.edge_kind(0, 1), Some(DepKind::Anti));
    }

    #[test]
    fn output_dependence() {
        let g = DepGraph::build(&[add(1, 9, 9), add(1, 8, 8)]);
        assert_eq!(g.edge_kind(0, 1), Some(DepKind::Output));
    }

    #[test]
    fn independent_instructions_have_no_edge() {
        let g = DepGraph::build(&[add(1, 9, 9), add(2, 8, 8)]);
        assert_eq!(g.edge_count(), 0);
        assert!(g.respects(&[1, 0]));
    }

    #[test]
    fn memory_edges_respect_aliasing() {
        let g = DepGraph::build(&[store(1, 0), load(2, 0), load(3, 8)]);
        assert_eq!(g.edge_kind(0, 1), Some(DepKind::Memory), "aliasing load after store");
        assert!(!g.has_edge(0, 2), "disjoint slots are independent");
        assert!(!g.has_edge(1, 2), "loads do not order with loads");
    }

    #[test]
    fn store_after_load_is_ordered() {
        let g = DepGraph::build(&[load(2, 0), store(1, 0)]);
        assert_eq!(g.edge_kind(0, 1), Some(DepKind::Memory));
    }

    #[test]
    fn unknown_slot_aliases_everything_in_space() {
        let g = DepGraph::build(&[
            store(1, 0),
            Inst::new(Opcode::Lwz).def(Reg::gpr(2)).use_(Reg::gpr(30)).mem(MemRef::unknown(MemSpace::Heap)),
        ]);
        assert!(g.has_edge(0, 1));
    }

    #[test]
    fn branch_orders_with_everything() {
        let g = DepGraph::build(&[add(1, 9, 9), add(2, 8, 8), Inst::new(Opcode::Bc).use_(Reg::cr(0))]);
        assert_eq!(g.edge_kind(0, 2), Some(DepKind::Control));
        assert_eq!(g.edge_kind(1, 2), Some(DepKind::Control));
        assert!(g.respects(&[1, 0, 2]));
        assert!(!g.respects(&[0, 2, 1]));
    }

    #[test]
    fn call_is_a_barrier_both_ways() {
        let g = DepGraph::build(&[add(1, 9, 9), Inst::new(Opcode::Bl).def(Reg::lr()), add(2, 8, 8)]);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 2));
        assert!(!g.has_edge(0, 2), "barrier chaining keeps the graph sparse");
        assert!(!g.respects(&[2, 1, 0]));
        assert!(g.respects(&[0, 1, 2]));
    }

    #[test]
    fn hazard_disallows_reordering() {
        let pei = Inst::new(Opcode::Lwz)
            .def(Reg::gpr(5))
            .use_(Reg::gpr(30))
            .mem(MemRef::slot(MemSpace::Heap, 4))
            .hazard(Hazards::PEI);
        let g = DepGraph::build(&[add(1, 9, 9), pei, add(2, 8, 8)]);
        assert_eq!(g.edge_kind(0, 1), Some(DepKind::Hazard));
        assert_eq!(g.edge_kind(1, 2), Some(DepKind::Hazard));
    }

    #[test]
    fn ready_tracks_scheduled_mask() {
        let g = DepGraph::build(&[add(1, 9, 9), add(2, 1, 9), add(3, 8, 8)]);
        assert_eq!(g.ready(&[false, false, false]), vec![0, 2]);
        assert_eq!(g.ready(&[true, false, false]), vec![1, 2]);
        assert_eq!(g.ready(&[true, true, true]), Vec::<usize>::new());
    }

    #[test]
    fn respects_rejects_non_permutations() {
        let g = DepGraph::build(&[add(1, 9, 9), add(2, 8, 8)]);
        assert!(!g.respects(&[0]));
        assert!(!g.respects(&[0, 0]));
        assert!(!g.respects(&[0, 5]));
    }

    #[test]
    fn speculative_lets_alu_cross_branches() {
        let insts = vec![add(1, 9, 9), Inst::new(Opcode::Bc).use_(Reg::cr(0)), add(2, 8, 8)];
        let normal = DepGraph::build(&insts);
        assert!(normal.has_edge(0, 1) && normal.has_edge(1, 2));
        let spec = DepGraph::build_speculative(&insts);
        assert!(!spec.has_edge(0, 1), "pure add may sink below the branch");
        assert!(!spec.has_edge(1, 2), "pure add may hoist above the branch");
        assert!(spec.respects(&[0, 2, 1]));
        assert!(spec.respects(&[1, 0, 2]));
    }

    #[test]
    fn speculative_keeps_stores_ordered_with_branches() {
        let insts = vec![store(1, 0), Inst::new(Opcode::Bc).use_(Reg::cr(0)), store(2, 4)];
        let spec = DepGraph::build_speculative(&insts);
        assert!(spec.has_edge(0, 1), "stores may not sink below a side exit");
        assert!(spec.has_edge(1, 2), "stores may not hoist above a side exit");
    }

    #[test]
    fn speculative_keeps_branches_ordered() {
        let insts = vec![Inst::new(Opcode::Bc).use_(Reg::cr(0)), add(1, 9, 9), Inst::new(Opcode::Bc).use_(Reg::cr(0))];
        let spec = DepGraph::build_speculative(&insts);
        assert!(spec.has_edge(0, 2), "side exits stay in order");
        assert!(!spec.has_edge(0, 1));
    }

    #[test]
    fn speculative_calls_remain_full_barriers() {
        let insts = vec![add(1, 9, 9), Inst::new(Opcode::Bl).def(Reg::lr()), add(2, 8, 8)];
        let spec = DepGraph::build_speculative(&insts);
        assert!(spec.has_edge(0, 1));
        assert!(spec.has_edge(1, 2));
    }

    #[test]
    fn speculative_hazards_remain_full_barriers() {
        let pei = Inst::new(Opcode::NullCheck).use_(Reg::gpr(5)).hazard(Hazards::PEI);
        let insts = vec![add(1, 9, 9), pei, add(2, 8, 8)];
        let spec = DepGraph::build_speculative(&insts);
        assert!(spec.has_edge(0, 1));
        assert!(spec.has_edge(1, 2));
    }

    #[test]
    fn edges_are_deduplicated() {
        // i1 both truly depends on r1 and anti-depends via r2... build a
        // case with two reasons for the same edge.
        let i0 = Inst::new(Opcode::Add).def(Reg::gpr(1)).def(Reg::gpr(2)).use_(Reg::gpr(9)).use_(Reg::gpr(9));
        let i1 = add(3, 1, 2);
        let g = DepGraph::build(&[i0, i1]);
        assert_eq!(g.edge_count(), 1);
    }
}
