//! Property-based tests for dependence-graph construction.

use proptest::prelude::*;
use wts_deps::{critical_paths, DepGraph};
use wts_ir::{Hazards, Inst, MemRef, MemSpace, Opcode, Reg};
use wts_machine::MachineConfig;

fn arb_insts(max: usize) -> impl Strategy<Value = Vec<Inst>> {
    prop::collection::vec(
        (0u8..7, 0u16..5, 0u16..5, 0u32..3).prop_map(|(kind, a, b, slot)| match kind {
            0 | 1 => Inst::new(Opcode::Add).def(Reg::gpr(a + 8)).use_(Reg::gpr(b)).use_(Reg::gpr(a)),
            2 => Inst::new(Opcode::Lwz).def(Reg::gpr(a + 8)).use_(Reg::gpr(b)).mem(MemRef::slot(MemSpace::Heap, slot)),
            3 => Inst::new(Opcode::Stw).use_(Reg::gpr(a)).use_(Reg::gpr(b)).mem(MemRef::slot(MemSpace::Heap, slot)),
            4 => Inst::new(Opcode::Fadd).def(Reg::fpr(a + 1)).use_(Reg::fpr(b)).use_(Reg::fpr(a)),
            5 => Inst::new(Opcode::NullCheck).use_(Reg::gpr(a)).hazard(Hazards::PEI),
            _ => Inst::new(Opcode::Mr).def(Reg::gpr(a + 8)).use_(Reg::gpr(b)),
        }),
        0..max,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn edges_point_forward_only(insts in arb_insts(16)) {
        let g = DepGraph::build(&insts);
        for i in 0..g.len() {
            for &(s, _) in g.succs(i) {
                prop_assert!((s as usize) > i, "edge {i} -> {s} goes backward");
            }
            for &(p, _) in g.preds(i) {
                prop_assert!((p as usize) < i);
            }
        }
    }

    #[test]
    fn preds_and_succs_are_mirror_images(insts in arb_insts(16)) {
        let g = DepGraph::build(&insts);
        let mut from_succs = 0usize;
        for i in 0..g.len() {
            for &(s, _) in g.succs(i) {
                prop_assert!(g.preds(s as usize).iter().any(|&(p, _)| p as usize == i));
                from_succs += 1;
            }
        }
        prop_assert_eq!(from_succs, g.edge_count());
    }

    #[test]
    fn identity_order_always_respected(insts in arb_insts(16)) {
        let g = DepGraph::build(&insts);
        let identity: Vec<usize> = (0..insts.len()).collect();
        prop_assert!(g.respects(&identity));
    }

    #[test]
    fn topological_consumption_reaches_every_node(insts in arb_insts(16)) {
        let g = DepGraph::build(&insts);
        let mut scheduled = vec![false; g.len()];
        let mut placed = 0;
        loop {
            let ready = g.ready(&scheduled);
            if ready.is_empty() {
                break;
            }
            scheduled[ready[0]] = true;
            placed += 1;
        }
        prop_assert_eq!(placed, g.len(), "DAG must never deadlock");
    }

    #[test]
    fn critical_paths_decrease_along_edges(insts in arb_insts(16)) {
        let m = MachineConfig::ppc7410();
        let g = DepGraph::build(&insts);
        let cp = critical_paths(&g, &insts, &m);
        for i in 0..g.len() {
            prop_assert!(cp[i] >= m.latency(insts[i].opcode()) as u64);
            for &(s, _) in g.succs(i) {
                prop_assert!(cp[i] > cp[s as usize], "cp must strictly decrease along an edge");
            }
        }
    }

    #[test]
    fn dependent_register_pairs_are_connected(insts in arb_insts(12)) {
        // For every pair (i, j), i < j, where j reads a register i writes
        // and no instruction between them rewrites it, an edge must exist.
        let g = DepGraph::build(&insts);
        for i in 0..insts.len() {
            'pair: for j in (i + 1)..insts.len() {
                for d in insts[i].defs() {
                    if insts[j].uses().contains(d) {
                        let rewritten = insts[i + 1..j].iter().any(|k| k.defs().contains(d));
                        if !rewritten {
                            prop_assert!(g.has_edge(i, j), "missing true dep {i} -> {j} on {d}");
                            continue 'pair;
                        }
                    }
                }
            }
        }
    }
}
