//! CSR layout vs. the old nested-adjacency builder, as an executable
//! oracle.
//!
//! The dependence graph moved from per-node `Vec<Vec<(u32, DepKind)>>`
//! adjacency (hash-set dedup, `readers.clone()` in the scan) to flat CSR
//! arrays built by a reusable sort-and-dedup [`GraphBuilder`]. Every
//! consumer — most critically the list scheduler's ready-queue insertion
//! under [`SchedulePolicy::Random`](wts_sched::SchedulePolicy) — relies
//! on the *slice orders* being unchanged, not just the edge sets. This
//! suite keeps a faithful reimplementation of the old builder and checks
//! the new graph against it edge for edge, slice for slice, on random
//! blocks, in both normal and speculative mode.

use proptest::prelude::*;
use std::collections::HashMap;
use wts_deps::{DepGraph, DepKind, GraphBuilder};
use wts_ir::{Hazards, Inst, MemRef, MemSpace, Opcode, Reg};

/// The pre-CSR builder, verbatim in structure: nested adjacency vectors
/// filled by chronological pushes, a hash set collapsing parallel edges
/// (first kind recorded wins), cloned reader lists.
struct OracleGraph {
    preds: Vec<Vec<(u32, DepKind)>>,
    succs: Vec<Vec<(u32, DepKind)>>,
}

struct OracleBuilder {
    preds: Vec<Vec<(u32, DepKind)>>,
    succs: Vec<Vec<(u32, DepKind)>>,
    edge_set: HashMap<(u32, u32), ()>,
    speculative: bool,
}

impl OracleBuilder {
    fn new(n: usize, speculative: bool) -> OracleBuilder {
        OracleBuilder { preds: vec![Vec::new(); n], succs: vec![Vec::new(); n], edge_set: HashMap::new(), speculative }
    }

    fn edge(&mut self, from: u32, to: u32, kind: DepKind) {
        if self.edge_set.insert((from, to), ()).is_none() {
            self.succs[from as usize].push((to, kind));
            self.preds[to as usize].push((from, kind));
        }
    }

    fn run(mut self, insts: &[Inst]) -> OracleGraph {
        let mut last_def: HashMap<Reg, u32> = HashMap::new();
        let mut uses_since_def: HashMap<Reg, Vec<u32>> = HashMap::new();
        let mut stores: Vec<u32> = Vec::new();
        let mut loads_since_store: Vec<u32> = Vec::new();
        let mut last_barrier: Option<u32> = None;
        let mut since_barrier: Vec<u32> = Vec::new();
        let mut last_branch: Option<u32> = None;

        for (idx, inst) in insts.iter().enumerate() {
            let i = u32::try_from(idx).expect("generated blocks fit u32 indices");
            let op = inst.opcode();

            for u in inst.uses() {
                if let Some(&d) = last_def.get(u) {
                    self.edge(d, i, DepKind::True);
                }
                uses_since_def.entry(*u).or_default().push(i);
            }
            for d in inst.defs() {
                if let Some(&p) = last_def.get(d) {
                    self.edge(p, i, DepKind::Output);
                }
                if let Some(readers) = uses_since_def.get(d) {
                    for &r in readers.clone().iter() {
                        if r != i {
                            self.edge(r, i, DepKind::Anti);
                        }
                    }
                }
            }
            if let Some(m) = inst.mem_ref() {
                for &s in &stores {
                    let sm = insts[s as usize].mem_ref().expect("stores carry mem refs");
                    if m.may_alias(sm) {
                        self.edge(s, i, DepKind::Memory);
                    }
                }
                if op.is_store() {
                    for &l in &loads_since_store {
                        let lm = insts[l as usize].mem_ref().expect("loads carry mem refs");
                        if m.may_alias(lm) {
                            self.edge(l, i, DepKind::Memory);
                        }
                    }
                }
            }

            let is_full_barrier = if self.speculative {
                op.is_call() || op.is_return() || inst.is_hazardous()
            } else {
                op.is_control() || inst.is_hazardous()
            };
            let is_branch_barrier = self.speculative && op.is_branch();
            let effectful = inst.opcode().has_side_effect() || inst.is_hazardous();

            if let Some(b) = last_barrier {
                let kind = if insts[b as usize].opcode().is_control() { DepKind::Control } else { DepKind::Hazard };
                self.edge(b, i, kind);
            }
            if is_branch_barrier {
                if let Some(br) = last_branch {
                    self.edge(br, i, DepKind::Control);
                }
                for &p in &since_barrier {
                    let pi = &insts[p as usize];
                    if pi.opcode().has_side_effect() || pi.is_hazardous() {
                        self.edge(p, i, DepKind::Control);
                    }
                }
                last_branch = Some(i);
                since_barrier.push(i);
            } else if is_full_barrier {
                let kind = if op.is_control() { DepKind::Control } else { DepKind::Hazard };
                for &p in &since_barrier {
                    self.edge(p, i, kind);
                }
                last_barrier = Some(i);
                last_branch = None;
                since_barrier.clear();
            } else {
                if effectful {
                    if let Some(br) = last_branch {
                        self.edge(br, i, DepKind::Control);
                    }
                }
                since_barrier.push(i);
            }

            for d in inst.defs() {
                last_def.insert(*d, i);
                uses_since_def.insert(*d, Vec::new());
            }
            if op.is_store() {
                stores.push(i);
                loads_since_store.clear();
            } else if op.is_load() {
                loads_since_store.push(i);
            }
        }
        OracleGraph { preds: self.preds, succs: self.succs }
    }
}

impl OracleGraph {
    /// The old `ready`: filter on fully scheduled predecessor lists.
    fn ready(&self, scheduled: &[bool]) -> Vec<usize> {
        (0..self.preds.len())
            .filter(|&i| !scheduled[i] && self.preds[i].iter().all(|&(p, _)| scheduled[p as usize]))
            .collect()
    }
}

/// Random block generator covering every dependence source: ALU chains,
/// loads/stores with aliasing slots, FP, hazards, branches and calls
/// (the barrier machinery the block-scope graphs never exercise matters
/// for the speculative superblock mode).
fn arb_insts(max: usize) -> impl Strategy<Value = Vec<Inst>> {
    prop::collection::vec(
        (0u8..10, 0u16..5, 0u16..5, 0u32..3).prop_map(|(kind, a, b, slot)| match kind {
            0 | 1 => Inst::new(Opcode::Add).def(Reg::gpr(a + 8)).use_(Reg::gpr(b)).use_(Reg::gpr(a)),
            2 => Inst::new(Opcode::Lwz).def(Reg::gpr(a + 8)).use_(Reg::gpr(b)).mem(MemRef::slot(MemSpace::Heap, slot)),
            3 => Inst::new(Opcode::Stw).use_(Reg::gpr(a)).use_(Reg::gpr(b)).mem(MemRef::slot(MemSpace::Heap, slot)),
            4 => Inst::new(Opcode::Fadd).def(Reg::fpr(a + 1)).use_(Reg::fpr(b)).use_(Reg::fpr(a)),
            5 => Inst::new(Opcode::NullCheck).use_(Reg::gpr(a)).hazard(Hazards::PEI),
            6 => Inst::new(Opcode::Mr).def(Reg::gpr(a + 8)).use_(Reg::gpr(b)),
            7 => Inst::new(Opcode::Bc).use_(Reg::cr(0)),
            8 => Inst::new(Opcode::Bl).def(Reg::lr()),
            _ => Inst::new(Opcode::Cmp).def(Reg::cr(0)).use_(Reg::gpr(a)).use_(Reg::gpr(b)),
        }),
        0..max,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// The tentpole invariant: CSR adjacency equals the old nested
    /// adjacency *slice for slice* — same targets, same kinds, same
    /// order — in both builder modes.
    #[test]
    fn csr_matches_nested_oracle_exactly(insts in arb_insts(24), spec_bit in 0u8..2) {
        let speculative = spec_bit == 1;
        let new = if speculative { DepGraph::build_speculative(&insts) } else { DepGraph::build(&insts) };
        let old = OracleBuilder::new(insts.len(), speculative).run(&insts);
        let old_edges: usize = old.succs.iter().map(Vec::len).sum();
        prop_assert_eq!(new.edge_count(), old_edges, "edge sets must agree");
        for i in 0..insts.len() {
            prop_assert_eq!(new.succs(i), &old.succs[i][..], "succs slice of {} must match in order and kind", i);
            prop_assert_eq!(new.preds(i), &old.preds[i][..], "preds slice of {} must match in order and kind", i);
        }
    }

    /// `ready` is what the scheduler's loop consumes; it must agree with
    /// the oracle on arbitrary scheduled masks, not just reachable ones.
    #[test]
    fn ready_matches_nested_oracle(insts in arb_insts(16), mask_seed in 0u64..u64::MAX) {
        let new = DepGraph::build(&insts);
        let old = OracleBuilder::new(insts.len(), false).run(&insts);
        // A cheap deterministic mask stream (xorshift) over a few draws.
        let mut s = mask_seed | 1;
        for _ in 0..4 {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            let scheduled: Vec<bool> = (0..insts.len()).map(|i| (s >> (i % 64)) & 1 == 1).collect();
            prop_assert_eq!(new.ready(&scheduled), old.ready(&scheduled));
        }
    }

    /// A reused builder must agree with the oracle just like a one-shot
    /// build — scratch-state leaks between blocks would show up here.
    #[test]
    fn reused_builder_matches_nested_oracle(blocks in prop::collection::vec(arb_insts(12), 1..5)) {
        let mut builder = GraphBuilder::new();
        let mut g = DepGraph::empty();
        for insts in &blocks {
            for &speculative in &[false, true] {
                builder.build_into(insts, speculative, &mut g);
                let old = OracleBuilder::new(insts.len(), speculative).run(insts);
                for i in 0..insts.len() {
                    prop_assert_eq!(g.succs(i), &old.succs[i][..]);
                    prop_assert_eq!(g.preds(i), &old.preds[i][..]);
                }
                prop_assert_eq!(builder.last_edge_count(), g.edge_count());
            }
        }
    }
}
