//! The wire protocol: length-prefixed little-endian frames.
//!
//! The encoding reuses the `schedfilter-trace-bin-v1` idioms from
//! [`wts_core`]'s binary trace format — every variable-length section is
//! length-prefixed, every length is validated before it is trusted, and
//! decoding walks the payload through a bounds-checked [`BinCursor`] so
//! a truncated or hostile frame surfaces as a named
//! [`BinaryTraceError`] instead of a panic or garbage.
//!
//! # Frame layout
//!
//! Every frame is `u32` payload length (little-endian, at most
//! [`MAX_FRAME_BYTES`]) followed by the payload. The payload's first
//! byte is the frame kind:
//!
//! ```text
//! 1  batch request   u64 batch id · str benchmark · u32 method count · methods
//! 2  batch result    u64 batch id · u64 filter epoch · 6 × u64 pass totals
//!                    · u32 unit count · units
//! 3  busy (shed)     u64 batch id · u32 queue depth
//! 4  error           str detail
//! ```
//!
//! where `str` is `u32` length + UTF-8 bytes, a method is
//!
//! ```text
//! u32 id · str name · u32 block count ·
//!   blocks: u32 id · u64 exec count · u32 inst count ·
//!     insts: u16 opcode · u8 hazard bits ·
//!            u8 def count  · defs:  u8 class · u16 index ·
//!            u8 use count  · uses:  u8 class · u16 index ·
//!            u8 mem tag (0 none · 1 slot + u8 space + u32 slot
//!                        · 2 unknown + u8 space) ·
//!            u8 imm flag   · i64 when set
//! ```
//!
//! and a served unit is `u8 decision`, then — only when scheduled —
//! `u32 order length · u32 × order · u64 cycles before · u64 cycles
//! after`. A skipped unit is the single decision byte.

use std::io::{self, Read, Write};
use wts_core::{BinCursor, BinaryTraceError, FilteredPass, ServedUnit};
use wts_ir::{BasicBlock, Hazards, Inst, MemRef, MemSpace, Method, Opcode, Reg, RegClass, RegList};

/// Hard cap on one frame's payload: larger length prefixes are rejected
/// before any allocation.
pub const MAX_FRAME_BYTES: usize = 64 << 20;

const KIND_BATCH_REQUEST: u8 = 1;
const KIND_BATCH_RESULT: u8 = 2;
const KIND_BUSY: u8 = 3;
const KIND_ERROR: u8 = 4;

/// One decoded client request: schedule these methods as one batch.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchRequest {
    /// Client-chosen id echoed in the response, so a pipelining client
    /// can match out-of-order results.
    pub batch_id: u64,
    /// Benchmark name the served units are recorded under when the
    /// retrainer folds them into the training set.
    pub benchmark: String,
    /// The compilation units to schedule.
    pub methods: Vec<Method>,
}

/// One completed batch: which filter version decided it, and what it
/// produced.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchResult {
    /// Echo of [`BatchRequest::batch_id`].
    pub batch_id: u64,
    /// The [`FilterSnapshot`](wts_core::FilterSnapshot) epoch every unit
    /// in this batch was decided by — a batch is never split across a
    /// hot swap.
    pub epoch: u64,
    /// The batch's pass totals, bit-identical (work channels) to running
    /// [`wts_core::filtered_schedule_pass_with`] over the same methods.
    pub totals: FilteredPass,
    /// Per-unit outcomes, in method-then-unit order.
    pub units: Vec<ServedUnit>,
}

/// Every frame the server can send back.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// The batch was scheduled.
    Batch(BatchResult),
    /// The batch was shed: the bounded job queue was full. The client
    /// owns the retry policy.
    Busy {
        /// Echo of the rejected request's id.
        batch_id: u64,
        /// The queue bound that was hit.
        queue_depth: u32,
    },
    /// The request could not be decoded; the connection is closed after
    /// this frame.
    Error {
        /// Human-readable diagnosis.
        detail: String,
    },
}

// ---------------------------------------------------------------------
// Frame transport
// ---------------------------------------------------------------------

/// Writes one length-prefixed frame.
///
/// # Errors
///
/// Propagates the underlying I/O error; rejects payloads over
/// [`MAX_FRAME_BYTES`] with [`io::ErrorKind::InvalidInput`].
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    if payload.len() > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("frame of {} bytes exceeds cap", payload.len()),
        ));
    }
    let len = u32::try_from(payload.len()).expect("checked against MAX_FRAME_BYTES above");
    w.write_all(&len.to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one length-prefixed frame; `Ok(None)` on a clean EOF at a
/// frame boundary.
///
/// # Errors
///
/// [`io::ErrorKind::UnexpectedEof`] when the stream ends mid-frame,
/// [`io::ErrorKind::InvalidData`] when the length prefix exceeds
/// [`MAX_FRAME_BYTES`], and any underlying I/O error otherwise.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut len_buf = [0u8; 4];
    let mut filled = 0;
    while filled < len_buf.len() {
        match r.read(&mut len_buf[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "stream ended inside a frame header")),
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame claims {len} bytes, cap is {MAX_FRAME_BYTES}"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

// ---------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------

fn put_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&u32::try_from(s.len()).expect("string length fits u32").to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn put_regs(out: &mut Vec<u8>, regs: &[Reg]) {
    out.push(u8::try_from(regs.len()).expect("RegList::CAPACITY fits u8"));
    for r in regs {
        out.push(class_index(r.class()));
        out.extend_from_slice(&r.index().to_le_bytes());
    }
}

fn class_index(class: RegClass) -> u8 {
    u8::try_from(RegClass::ALL.iter().position(|&c| c == class).expect("RegClass::ALL is exhaustive"))
        .expect("RegClass::ALL fits u8")
}

fn space_index(space: MemSpace) -> u8 {
    match space {
        MemSpace::Stack => 0,
        MemSpace::Heap => 1,
        MemSpace::Static => 2,
    }
}

fn hazard_bits(h: Hazards) -> u8 {
    let mut bits = 0u8;
    for (bit, flag) in hazard_flags() {
        if h.contains(flag) {
            bits |= bit;
        }
    }
    bits
}

fn hazard_flags() -> [(u8, Hazards); 4] {
    [(1, Hazards::PEI), (2, Hazards::GC_POINT), (4, Hazards::THREAD_SWITCH), (8, Hazards::YIELD)]
}

fn put_inst(out: &mut Vec<u8>, inst: &Inst) {
    out.extend_from_slice(&u16::try_from(inst.opcode().index()).expect("opcode table fits u16").to_le_bytes());
    out.push(hazard_bits(inst.hazards()));
    put_regs(out, inst.defs());
    put_regs(out, inst.uses());
    match inst.mem_ref() {
        None => out.push(0),
        Some(m) => match m.slot_id() {
            Some(slot) => {
                out.push(1);
                out.push(space_index(m.space()));
                out.extend_from_slice(&slot.to_le_bytes());
            }
            None => {
                out.push(2);
                out.push(space_index(m.space()));
            }
        },
    }
    match inst.immediate() {
        None => out.push(0),
        Some(v) => {
            out.push(1);
            out.extend_from_slice(&v.to_le_bytes());
        }
    }
}

fn put_method(out: &mut Vec<u8>, method: &Method) {
    out.extend_from_slice(&method.id().0.to_le_bytes());
    put_str(out, method.name());
    out.extend_from_slice(&u32::try_from(method.blocks().len()).expect("block count fits u32").to_le_bytes());
    for block in method.blocks() {
        out.extend_from_slice(&block.id().0.to_le_bytes());
        out.extend_from_slice(&block.exec_count().to_le_bytes());
        out.extend_from_slice(&u32::try_from(block.insts().len()).expect("inst count fits u32").to_le_bytes());
        for inst in block.insts() {
            put_inst(out, inst);
        }
    }
}

/// Encodes a batch request payload (kind 1).
pub fn encode_batch_request(batch_id: u64, benchmark: &str, methods: &[Method]) -> Vec<u8> {
    let mut out = Vec::with_capacity(64 + methods.len() * 256);
    out.push(KIND_BATCH_REQUEST);
    out.extend_from_slice(&batch_id.to_le_bytes());
    put_str(&mut out, benchmark);
    out.extend_from_slice(&u32::try_from(methods.len()).expect("method count fits u32").to_le_bytes());
    for m in methods {
        put_method(&mut out, m);
    }
    out
}

/// Encodes any server response payload (kinds 2–4).
pub fn encode_response(resp: &Response) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    match resp {
        Response::Batch(batch) => {
            out.push(KIND_BATCH_RESULT);
            out.extend_from_slice(&batch.batch_id.to_le_bytes());
            out.extend_from_slice(&batch.epoch.to_le_bytes());
            for v in [
                batch.totals.total_blocks as u64,
                batch.totals.scheduled_blocks as u64,
                batch.totals.conditions_evaluated,
                batch.totals.extraction_work,
                batch.totals.sched_work,
                batch.totals.pass_ns,
            ] {
                out.extend_from_slice(&v.to_le_bytes());
            }
            out.extend_from_slice(&u32::try_from(batch.units.len()).expect("unit count fits u32").to_le_bytes());
            for unit in &batch.units {
                out.push(u8::from(unit.decision));
                if unit.decision {
                    out.extend_from_slice(
                        &u32::try_from(unit.order.len()).expect("unit length fits u32").to_le_bytes(),
                    );
                    for &i in &unit.order {
                        out.extend_from_slice(&i.to_le_bytes());
                    }
                    out.extend_from_slice(&unit.cycles_before.to_le_bytes());
                    out.extend_from_slice(&unit.cycles_after.to_le_bytes());
                }
            }
        }
        Response::Busy { batch_id, queue_depth } => {
            out.push(KIND_BUSY);
            out.extend_from_slice(&batch_id.to_le_bytes());
            out.extend_from_slice(&queue_depth.to_le_bytes());
        }
        Response::Error { detail } => {
            out.push(KIND_ERROR);
            put_str(&mut out, detail);
        }
    }
    out
}

// ---------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------

fn hostile(section: &'static str, detail: impl Into<String>) -> BinaryTraceError {
    BinaryTraceError::HostileHeader { section, detail: detail.into() }
}

/// Validates a claimed element count against the bytes actually present:
/// `count` elements of at least `min_bytes` each must fit in what
/// remains, so a hostile prefix cannot drive a huge allocation.
fn checked_count(
    cur: &BinCursor<'_>,
    count: u32,
    min_bytes: usize,
    section: &'static str,
) -> Result<usize, BinaryTraceError> {
    let count = count as usize;
    if count.saturating_mul(min_bytes) > cur.remaining() {
        return Err(hostile(section, format!("claims {count} entries but only {} bytes remain", cur.remaining())));
    }
    Ok(count)
}

fn take_str<'a>(cur: &mut BinCursor<'a>, section: &'static str) -> Result<&'a str, BinaryTraceError> {
    let len = cur.u32(section)? as usize;
    if len > cur.remaining() {
        return Err(hostile(section, format!("claims {len} bytes but only {} remain", cur.remaining())));
    }
    cur.str(len, section)
}

fn take_reg(cur: &mut BinCursor<'_>, section: &'static str) -> Result<Reg, BinaryTraceError> {
    let class = cur.u8(section)? as usize;
    let index = cur.u16(section)?;
    let class =
        *RegClass::ALL.get(class).ok_or_else(|| hostile(section, format!("register class {class} out of range")))?;
    Ok(Reg::new(class, index))
}

fn take_regs(cur: &mut BinCursor<'_>, section: &'static str) -> Result<Vec<Reg>, BinaryTraceError> {
    let count = cur.u8(section)? as usize;
    if count > RegList::CAPACITY {
        return Err(hostile(
            section,
            format!("{count} registers exceed the operand capacity of {}", RegList::CAPACITY),
        ));
    }
    (0..count).map(|_| take_reg(cur, section)).collect()
}

fn take_space(cur: &mut BinCursor<'_>, section: &'static str) -> Result<MemSpace, BinaryTraceError> {
    match cur.u8(section)? {
        0 => Ok(MemSpace::Stack),
        1 => Ok(MemSpace::Heap),
        2 => Ok(MemSpace::Static),
        n => Err(hostile(section, format!("memory space {n} out of range"))),
    }
}

fn take_inst(cur: &mut BinCursor<'_>) -> Result<Inst, BinaryTraceError> {
    const SECTION: &str = "instruction";
    let op = cur.u16(SECTION)? as usize;
    let op = *Opcode::ALL.get(op).ok_or_else(|| hostile(SECTION, format!("opcode {op} out of range")))?;
    let bits = cur.u8(SECTION)?;
    if bits & !0b1111 != 0 {
        return Err(hostile(SECTION, format!("unknown hazard bits {bits:#04x}")));
    }
    let mut hazards = Hazards::NONE;
    for (bit, flag) in hazard_flags() {
        if bits & bit != 0 {
            hazards = hazards.union(flag);
        }
    }
    let mut inst = Inst::new(op);
    for r in take_regs(cur, SECTION)? {
        inst = inst.def(r);
    }
    for r in take_regs(cur, SECTION)? {
        inst = inst.use_(r);
    }
    inst = match cur.u8(SECTION)? {
        0 => inst,
        1 => {
            let space = take_space(cur, SECTION)?;
            inst.mem(MemRef::slot(space, cur.u32(SECTION)?))
        }
        2 => inst.mem(MemRef::unknown(take_space(cur, SECTION)?)),
        n => return Err(hostile(SECTION, format!("memory tag {n} out of range"))),
    };
    if !hazards.is_none() {
        inst = inst.hazard(hazards);
    }
    inst = match cur.u8(SECTION)? {
        0 => inst,
        1 => inst.imm(cur.i64(SECTION)?),
        n => return Err(hostile(SECTION, format!("immediate flag {n} out of range"))),
    };
    Ok(inst)
}

fn take_method(cur: &mut BinCursor<'_>) -> Result<Method, BinaryTraceError> {
    const SECTION: &str = "method";
    let id = cur.u32(SECTION)?;
    let name = take_str(cur, SECTION)?;
    let block_count = cur.u32(SECTION)?;
    // A block is at least id + exec count + inst count = 16 bytes.
    let block_count = checked_count(cur, block_count, 16, "block table")?;
    let mut method = Method::new(id, name);
    for _ in 0..block_count {
        let block_id = cur.u32("block")?;
        let exec_count = cur.u64("block")?;
        let inst_count = cur.u32("block")?;
        // The smallest instruction is opcode + hazards + two empty
        // operand lists + mem tag + imm flag = 7 bytes.
        let inst_count = checked_count(cur, inst_count, 7, "instruction table")?;
        let mut insts = Vec::with_capacity(inst_count);
        for _ in 0..inst_count {
            insts.push(take_inst(cur)?);
        }
        let mut block = BasicBlock::from_insts(block_id, insts);
        block.set_exec_count(exec_count);
        method.push_block(block);
    }
    Ok(method)
}

fn expect_drained(cur: &BinCursor<'_>) -> Result<(), BinaryTraceError> {
    if cur.remaining() != 0 {
        return Err(hostile("frame", format!("{} trailing bytes after the payload", cur.remaining())));
    }
    Ok(())
}

/// Decodes a batch request payload (kind 1).
///
/// # Errors
///
/// [`BinaryTraceError`] naming the malformed section: wrong kind tag,
/// truncation, an out-of-range opcode/register/space/tag, a length
/// prefix larger than the bytes present, or trailing bytes.
pub fn decode_batch_request(payload: &[u8]) -> Result<BatchRequest, BinaryTraceError> {
    let mut cur = BinCursor::new(payload);
    let kind = cur.u8("frame kind")?;
    if kind != KIND_BATCH_REQUEST {
        return Err(hostile("frame kind", format!("expected a batch request (1), got {kind}")));
    }
    let batch_id = cur.u64("batch header")?;
    let benchmark = take_str(&mut cur, "batch header")?.to_string();
    let method_count = cur.u32("batch header")?;
    // A method is at least id + name length + block count = 12 bytes.
    let method_count = checked_count(&cur, method_count, 12, "method table")?;
    let methods = (0..method_count).map(|_| take_method(&mut cur)).collect::<Result<Vec<_>, _>>()?;
    expect_drained(&cur)?;
    Ok(BatchRequest { batch_id, benchmark, methods })
}

/// Decodes any server response payload (kinds 2–4).
///
/// # Errors
///
/// [`BinaryTraceError`] naming the malformed section, as in
/// [`decode_batch_request`].
pub fn decode_response(payload: &[u8]) -> Result<Response, BinaryTraceError> {
    let mut cur = BinCursor::new(payload);
    let kind = cur.u8("frame kind")?;
    let resp = match kind {
        KIND_BATCH_RESULT => {
            let batch_id = cur.u64("result header")?;
            let epoch = cur.u64("result header")?;
            let totals = FilteredPass {
                total_blocks: usize::try_from(cur.u64("pass totals")?)
                    .map_err(|_| hostile("pass totals", "total_blocks does not fit usize"))?,
                scheduled_blocks: usize::try_from(cur.u64("pass totals")?)
                    .map_err(|_| hostile("pass totals", "scheduled_blocks does not fit usize"))?,
                conditions_evaluated: cur.u64("pass totals")?,
                extraction_work: cur.u64("pass totals")?,
                sched_work: cur.u64("pass totals")?,
                pass_ns: cur.u64("pass totals")?,
            };
            let unit_count = cur.u32("unit table")?;
            let unit_count = checked_count(&cur, unit_count, 1, "unit table")?;
            let mut units = Vec::with_capacity(unit_count);
            for _ in 0..unit_count {
                let decision = match cur.u8("unit")? {
                    0 => false,
                    1 => true,
                    n => return Err(hostile("unit", format!("decision byte {n} out of range"))),
                };
                if !decision {
                    units.push(ServedUnit::default());
                    continue;
                }
                let order_len = cur.u32("unit order")?;
                let order_len = checked_count(&cur, order_len, 4, "unit order")?;
                let order = (0..order_len).map(|_| cur.u32("unit order")).collect::<Result<Vec<_>, _>>()?;
                let cycles_before = cur.u64("unit cycles")?;
                let cycles_after = cur.u64("unit cycles")?;
                units.push(ServedUnit { decision, order, cycles_before, cycles_after });
            }
            Response::Batch(BatchResult { batch_id, epoch, totals, units })
        }
        KIND_BUSY => Response::Busy { batch_id: cur.u64("busy")?, queue_depth: cur.u32("busy")? },
        KIND_ERROR => Response::Error { detail: take_str(&mut cur, "error")?.to_string() },
        n => return Err(hostile("frame kind", format!("expected a response (2-4), got {n}"))),
    };
    expect_drained(&cur)?;
    Ok(resp)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn suite_methods() -> (String, Vec<Method>) {
        let program = wts_core::testutil::learnable_suite(2).remove(0);
        (program.name().to_string(), program.methods().to_vec())
    }

    #[test]
    fn requests_round_trip_exactly() {
        let (benchmark, methods) = suite_methods();
        let payload = encode_batch_request(7, &benchmark, &methods);
        let decoded = decode_batch_request(&payload).expect("round trip");
        assert_eq!(decoded.batch_id, 7);
        assert_eq!(decoded.benchmark, benchmark);
        assert_eq!(decoded.methods, methods);
    }

    #[test]
    fn every_operand_shape_round_trips() {
        let mut insts = vec![
            Inst::new(Opcode::Add).def(Reg::gpr(1)).use_(Reg::fpr(2)).use_(Reg::cr(0)).use_(Reg::lr()),
            Inst::new(Opcode::Lwz).def(Reg::gpr(3)).mem(MemRef::slot(MemSpace::Static, 9)).imm(-4),
            Inst::new(Opcode::Stw).use_(Reg::gpr(3)).mem(MemRef::unknown(MemSpace::Heap)),
            Inst::new(Opcode::Li).def(Reg::gpr(4)).imm(i64::MIN),
        ];
        for (bit, flag) in hazard_flags() {
            insts.push(Inst::new(Opcode::Bl).hazard(flag.union(Hazards::PEI)));
            assert_eq!(hazard_bits(flag), bit);
        }
        let mut method = Method::new(41, "shapes");
        let mut block = BasicBlock::from_insts(3, insts);
        block.set_exec_count(u64::MAX);
        method.push_block(block);
        let payload = encode_batch_request(u64::MAX, "hazard/üñïçødé", &[method.clone()]);
        let decoded = decode_batch_request(&payload).expect("round trip");
        assert_eq!(decoded.methods, vec![method]);
        assert_eq!(decoded.benchmark, "hazard/üñïçødé");
    }

    #[test]
    fn responses_round_trip_exactly() {
        let batch = BatchResult {
            batch_id: 3,
            epoch: 12,
            totals: FilteredPass {
                total_blocks: 5,
                scheduled_blocks: 2,
                conditions_evaluated: 9,
                extraction_work: 70,
                sched_work: 431,
                pass_ns: 12345,
            },
            units: vec![
                ServedUnit { decision: true, order: vec![2, 0, 1], cycles_before: 9, cycles_after: 7 },
                ServedUnit::default(),
            ],
        };
        for resp in [
            Response::Batch(batch),
            Response::Busy { batch_id: 8, queue_depth: 64 },
            Response::Error { detail: "nope".to_string() },
        ] {
            let decoded = decode_response(&encode_response(&resp)).expect("round trip");
            assert_eq!(decoded, resp);
        }
    }

    #[test]
    fn hostile_payloads_are_diagnosed_not_trusted() {
        let (benchmark, methods) = suite_methods();
        let good = encode_batch_request(1, &benchmark, &methods);

        // Truncation anywhere in the payload is an error, never a panic.
        for cut in [0, 1, 8, good.len() / 2, good.len() - 1] {
            assert!(decode_batch_request(&good[..cut]).is_err(), "truncated at {cut}");
        }

        // A method count promising more data than the frame holds is
        // rejected before any allocation happens. The count sits after
        // kind (1), batch id (8) and the length-prefixed benchmark name.
        let count_at = 1 + 8 + 4 + benchmark.len();
        let mut hostile_count = good.clone();
        hostile_count[count_at..count_at + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        let err = decode_batch_request(&hostile_count).expect_err("hostile count");
        assert!(matches!(err, BinaryTraceError::HostileHeader { .. }), "{err}");

        // Trailing bytes are an error: a frame is exactly one message.
        let mut trailing = good.clone();
        trailing.push(0);
        assert!(decode_batch_request(&trailing).is_err());

        // The wrong kind tag never decodes as the wrong message.
        assert!(decode_response(&good).is_err());
        assert!(decode_batch_request(&encode_response(&Response::Busy { batch_id: 0, queue_depth: 1 })).is_err());
    }

    #[test]
    fn frames_round_trip_and_reject_oversized_claims() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"abc").expect("write");
        write_frame(&mut wire, b"").expect("write");
        let mut r = &wire[..];
        assert_eq!(read_frame(&mut r).expect("frame 1").as_deref(), Some(&b"abc"[..]));
        assert_eq!(read_frame(&mut r).expect("frame 2").as_deref(), Some(&b""[..]));
        assert_eq!(read_frame(&mut r).expect("eof"), None, "clean EOF at a frame boundary");

        let mut huge = Vec::from((u32::try_from(MAX_FRAME_BYTES).expect("cap fits u32") + 1).to_le_bytes());
        huge.extend_from_slice(b"xx");
        assert_eq!(read_frame(&mut &huge[..]).expect_err("cap").kind(), io::ErrorKind::InvalidData);

        let torn = [3u8, 0];
        assert_eq!(read_frame(&mut &torn[..]).expect_err("torn header").kind(), io::ErrorKind::UnexpectedEof);
    }
}
