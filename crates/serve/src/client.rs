//! A minimal blocking client for the serving protocol: frame the
//! request, read frames back, match responses to requests by batch id.

use crate::protocol::{self, BatchResult, Response};
use std::collections::HashMap;
use std::io;
use std::net::{TcpStream, ToSocketAddrs};
use wts_ir::Method;

/// One connection to a serving instance.
///
/// The client may pipeline: [`send`](ServeClient::send) any number of
/// batches, then collect responses — the server may answer out of
/// order (batches land on different workers), so
/// [`recv_for`](ServeClient::recv_for) buffers mismatched ids until the
/// requested one arrives.
#[derive(Debug)]
pub struct ServeClient {
    stream: TcpStream,
    out_of_order: HashMap<u64, Response>,
}

impl ServeClient {
    /// Connects to a serving instance.
    ///
    /// # Errors
    ///
    /// Propagates the connect error.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<ServeClient> {
        let stream = TcpStream::connect(addr)?;
        // Requests are a length prefix plus payload; Nagle would hold
        // the payload for the server's delayed ACK on every batch.
        let _ = stream.set_nodelay(true);
        Ok(ServeClient { stream, out_of_order: HashMap::new() })
    }

    /// Sends one batch request without waiting for the response.
    ///
    /// # Errors
    ///
    /// Propagates the write error.
    pub fn send(&mut self, batch_id: u64, benchmark: &str, methods: &[Method]) -> io::Result<()> {
        protocol::write_frame(&mut self.stream, &protocol::encode_batch_request(batch_id, benchmark, methods))
    }

    /// Reads the next response frame, whichever batch it answers.
    ///
    /// # Errors
    ///
    /// [`io::ErrorKind::UnexpectedEof`] when the server closed the
    /// connection, [`io::ErrorKind::InvalidData`] on an undecodable
    /// frame, and any underlying I/O error otherwise.
    pub fn recv(&mut self) -> io::Result<Response> {
        let payload = protocol::read_frame(&mut self.stream)?
            .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "server closed the connection"))?;
        protocol::decode_response(&payload).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
    }

    /// Reads responses until `batch_id`'s arrives, buffering any other
    /// batches' responses for later `recv_for` calls.
    ///
    /// # Errors
    ///
    /// As [`recv`](ServeClient::recv).
    pub fn recv_for(&mut self, batch_id: u64) -> io::Result<Response> {
        if let Some(resp) = self.out_of_order.remove(&batch_id) {
            return Ok(resp);
        }
        loop {
            let resp = self.recv()?;
            match &resp {
                Response::Batch(BatchResult { batch_id: got, .. }) | Response::Busy { batch_id: got, .. }
                    if *got != batch_id =>
                {
                    self.out_of_order.insert(*got, resp);
                }
                _ => return Ok(resp),
            }
        }
    }

    /// Sends one batch and waits for its response.
    ///
    /// # Errors
    ///
    /// As [`send`](ServeClient::send) and [`recv_for`](ServeClient::recv_for).
    pub fn request(&mut self, batch_id: u64, benchmark: &str, methods: &[Method]) -> io::Result<Response> {
        self.send(batch_id, benchmark, methods)?;
        self.recv_for(batch_id)
    }

    /// Sends one batch and retries (bounded) while the server sheds it,
    /// so callers that need an answer — not a load probe — get one.
    ///
    /// # Errors
    ///
    /// As [`request`](ServeClient::request); additionally
    /// [`io::ErrorKind::WouldBlock`] when the server stayed busy through
    /// every retry.
    pub fn request_with_retry(
        &mut self,
        batch_id: u64,
        benchmark: &str,
        methods: &[Method],
        retries: usize,
    ) -> io::Result<Response> {
        for attempt in 0..=retries {
            match self.request(batch_id, benchmark, methods)? {
                Response::Busy { .. } if attempt < retries => {
                    std::thread::sleep(std::time::Duration::from_millis(1 << attempt.min(6)));
                }
                resp => return Ok(resp),
            }
        }
        Err(io::Error::new(io::ErrorKind::WouldBlock, format!("batch {batch_id} shed through {retries} retries")))
    }
}
