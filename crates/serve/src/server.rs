//! The serving loop: acceptor, per-connection readers, scheduling
//! workers and the retraining thread, all plain `std::thread` over
//! blocking sockets.
//!
//! ```text
//!                 ┌──────────┐   bounded sync_channel    ┌─────────┐
//! client ──TCP──▶ │  reader   │ ──── try_send(Job) ────▶ │ worker  │──▶ response
//!                 │ (1/conn)  │        │ full?           │ (×N)    │     frame
//!                 └──────────┘        ▼                  └────┬────┘
//!                               Busy frame (shed)             │ served methods
//!                                                             ▼
//!                                                       ┌───────────┐
//!                                                       │ retrainer │─▶ FilterStore::swap
//!                                                       └───────────┘     (epoch++)
//! ```
//!
//! Each worker owns a [`UnitServer`] — per-thread scheduler scratch
//! reused across every unit it serves — and loads **one**
//! [`FilterSnapshot`](wts_core::FilterSnapshot) per batch, so a batch is
//! never split across a hot swap and its response carries the exact
//! epoch that decided it. Backpressure is explicit: the job queue is a
//! bounded [`sync_channel`], and a reader that finds it full sheds the
//! batch with a [`Response::Busy`] frame instead of stalling the socket.
//!
//! Shutdown is a drain, not a kill: stop accepting, half-close every
//! connection's read side (in-flight responses still flow), join the
//! readers, close the job queue so the workers finish every batch that
//! was accepted, then close the retrain queue so the retrainer absorbs
//! every served method and folds once more if records are pending. The
//! [`ServeReport`] accounts for every unit: served units either became
//! retrainer records or the batch was shed — nothing is lost or counted
//! twice.

use crate::protocol::{self, BatchResult, Response};
use crate::retrain::{retrain_loop, RetrainReport};
use std::io;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;
use wts_core::{
    train_filter, DecisionPolicy, FilterKey, FilterStore, FilteredPass, LearnerKind, TimingMode, TraceOptions,
    TraceRecord, TrainConfig, UnitServer,
};
use wts_ir::{form_superblocks, Method, ScopeKind};

/// Full configuration of one serving instance.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// The machine model every unit is scheduled for.
    pub machine: wts_machine::MachineConfig,
    /// Scheduler policy, scope and timing mode, shared by the serving
    /// fast path and the retrainer's trace collection (`threads` is
    /// ignored — parallelism comes from `workers`).
    pub options: TraceOptions,
    /// The schedule/skip decision layer.
    pub decision: DecisionPolicy,
    /// Induction backend the retrainer re-runs on every fold.
    pub learner: LearnerKind,
    /// Labeling threshold (percent) for retraining.
    pub threshold: u32,
    /// Scheduling worker threads.
    pub workers: usize,
    /// Bound of the job queue; a full queue sheds with
    /// [`Response::Busy`].
    pub queue_depth: usize,
    /// Retrain cadence: fold and hot-swap after this many newly observed
    /// trace records. 0 disables retraining entirely — served batches
    /// are not observed and the filter only changes via explicit
    /// [`FilterStore::swap`].
    pub retrain_every: usize,
    /// The initial training corpus; the filter served at epoch 1 is
    /// trained from these before the listener opens.
    pub seed_traces: Vec<TraceRecord>,
    /// When set, the retrainer writes its full corpus (seed traces plus
    /// every absorbed observation) to this path in the
    /// `schedfilter-trace-bin-v1` format as the last act of a graceful
    /// shutdown, so a restarted instance can seed from exactly what this
    /// one learned. `None` (the default) persists nothing.
    pub persist_corpus: Option<std::path::PathBuf>,
}

impl ServeConfig {
    /// A config serving `machine` with the deployed-pass defaults:
    /// deterministic timing, block scope, hard-threshold decisions, the
    /// default learner at threshold 0, two workers, a queue bound of 64
    /// and a retrain fold every 256 records.
    pub fn new(machine: wts_machine::MachineConfig, seed_traces: Vec<TraceRecord>) -> ServeConfig {
        ServeConfig {
            machine,
            options: TraceOptions { timing: TimingMode::Deterministic, ..TraceOptions::default() },
            decision: DecisionPolicy::default(),
            learner: LearnerKind::default(),
            threshold: 0,
            workers: 2,
            queue_depth: 64,
            retrain_every: 256,
            seed_traces,
            persist_corpus: None,
        }
    }

    /// The store key this instance serves and retrains under.
    pub fn filter_key(&self) -> FilterKey {
        FilterKey::new(self.machine.name(), &self.learner, self.options.scope, self.threshold)
    }

    /// The training configuration the retrainer folds with.
    pub fn train_config(&self) -> TrainConfig {
        TrainConfig::with_learner(self.threshold, self.learner.clone()).with_scope(self.options.scope)
    }
}

/// Live counters, updated by every thread of the instance.
#[derive(Debug, Default)]
struct Counters {
    connections: AtomicU64,
    batches_served: AtomicU64,
    batches_shed: AtomicU64,
    units_served: AtomicU64,
    units_scheduled: AtomicU64,
    protocol_errors: AtomicU64,
}

/// A point-in-time copy of the server's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServeStats {
    /// Connections accepted.
    pub connections: u64,
    /// Batches scheduled and answered.
    pub batches_served: u64,
    /// Batches rejected with [`Response::Busy`] because the job queue
    /// was full.
    pub batches_shed: u64,
    /// Scope units (blocks or superblock traces) served across all
    /// batches.
    pub units_served: u64,
    /// Served units the filter sent to the scheduler.
    pub units_scheduled: u64,
    /// Connections dropped after an undecodable frame.
    pub protocol_errors: u64,
}

impl Counters {
    fn snapshot(&self) -> ServeStats {
        ServeStats {
            connections: self.connections.load(Ordering::Relaxed),
            batches_served: self.batches_served.load(Ordering::Relaxed),
            batches_shed: self.batches_shed.load(Ordering::Relaxed),
            units_served: self.units_served.load(Ordering::Relaxed),
            units_scheduled: self.units_scheduled.load(Ordering::Relaxed),
            protocol_errors: self.protocol_errors.load(Ordering::Relaxed),
        }
    }
}

/// What a drained instance reports from [`ServerHandle::shutdown`].
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Final serving counters.
    pub stats: ServeStats,
    /// What the retrainer absorbed and swapped.
    pub retrain: RetrainReport,
}

/// One unit of queued work: a decoded batch plus the connection to
/// answer on.
struct Job {
    batch_id: u64,
    benchmark: String,
    methods: Vec<Method>,
    conn: Arc<Mutex<TcpStream>>,
}

/// The serving instance. [`Server::bind`] trains the initial filter,
/// publishes it at epoch 1 and starts the thread fleet; the returned
/// [`ServerHandle`] owns the instance.
pub struct Server;

impl Server {
    /// Binds `addr`, publishes the seed filter and starts serving.
    ///
    /// # Errors
    ///
    /// I/O errors from the bind, and [`io::ErrorKind::InvalidInput`]
    /// when the seed corpus is empty or `workers`/`queue_depth` is 0.
    pub fn bind(addr: impl ToSocketAddrs, config: ServeConfig) -> io::Result<ServerHandle> {
        Server::bind_with_store(addr, config, FilterStore::shared())
    }

    /// [`Server::bind`] over a caller-owned store, so a serving instance
    /// can share filters with an
    /// [`Experiment`](wts_core::Experiment) run or a
    /// [`CompileSession`](../../wts_jit/struct.CompileSession.html).
    pub fn bind_with_store(
        addr: impl ToSocketAddrs,
        config: ServeConfig,
        store: Arc<FilterStore>,
    ) -> io::Result<ServerHandle> {
        if config.seed_traces.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "the seed corpus is empty: nothing to train the epoch-1 filter from",
            ));
        }
        if config.workers == 0 || config.queue_depth == 0 {
            return Err(io::Error::new(io::ErrorKind::InvalidInput, "workers and queue_depth must both be at least 1"));
        }
        let key = config.filter_key();
        store.deployed_or_train(key.clone(), || train_filter(&config.seed_traces, &config.train_config()));

        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;

        let shutdown = Arc::new(AtomicBool::new(false));
        let counters = Arc::new(Counters::default());
        let conns: Arc<Mutex<Vec<TcpStream>>> = Arc::new(Mutex::new(Vec::new()));
        let readers: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let (job_tx, job_rx) = mpsc::sync_channel::<Job>(config.queue_depth);
        let (retrain_tx, retrain_rx) = mpsc::sync_channel::<(String, Vec<Method>)>(config.queue_depth);
        let job_rx = Arc::new(Mutex::new(job_rx));

        let mut workers = Vec::with_capacity(config.workers);
        for _ in 0..config.workers {
            let rx = Arc::clone(&job_rx);
            let store = Arc::clone(&store);
            let counters = Arc::clone(&counters);
            let retrain_tx = retrain_tx.clone();
            let config = config.clone();
            let key = key.clone();
            workers.push(std::thread::spawn(move || worker_loop(&rx, &store, &key, &config, &counters, &retrain_tx)));
        }
        drop(retrain_tx);

        let retrainer = {
            let store = Arc::clone(&store);
            let config = config.clone();
            let key = key.clone();
            std::thread::spawn(move || retrain_loop(&retrain_rx, &store, &key, &config))
        };

        let acceptor = {
            let shutdown = Arc::clone(&shutdown);
            let counters = Arc::clone(&counters);
            let conns = Arc::clone(&conns);
            let readers = Arc::clone(&readers);
            let job_tx = job_tx.clone();
            let queue_depth = config.queue_depth;
            std::thread::spawn(move || {
                accept_loop(&listener, &shutdown, &counters, &conns, &readers, &job_tx, queue_depth);
            })
        };

        Ok(ServerHandle {
            local_addr,
            store,
            key,
            shutdown,
            counters,
            conns,
            readers,
            job_tx: Some(job_tx),
            acceptor: Some(acceptor),
            workers,
            retrainer: Some(retrainer),
        })
    }
}

/// The running instance: address, shared store and the drain switch.
#[derive(Debug)]
pub struct ServerHandle {
    local_addr: SocketAddr,
    store: Arc<FilterStore>,
    key: FilterKey,
    shutdown: Arc<AtomicBool>,
    counters: Arc<Counters>,
    conns: Arc<Mutex<Vec<TcpStream>>>,
    readers: Arc<Mutex<Vec<JoinHandle<()>>>>,
    job_tx: Option<SyncSender<Job>>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    retrainer: Option<JoinHandle<RetrainReport>>,
}

impl ServerHandle {
    /// The bound address (use with port 0 to discover the OS pick).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The store this instance serves from; swap through it to hot-swap
    /// the live filter.
    pub fn store(&self) -> &Arc<FilterStore> {
        &self.store
    }

    /// The key the instance serves and retrains under.
    pub fn key(&self) -> &FilterKey {
        &self.key
    }

    /// The currently served filter epoch.
    pub fn epoch(&self) -> u64 {
        self.store.epoch(&self.key).unwrap_or(0)
    }

    /// A point-in-time copy of the serving counters.
    pub fn stats(&self) -> ServeStats {
        self.counters.snapshot()
    }

    /// Drains and stops the instance: no new connections, every
    /// accepted batch answered, every served method absorbed by the
    /// retrainer (with a final fold when records are pending), all
    /// threads joined.
    pub fn shutdown(mut self) -> ServeReport {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(acceptor) = self.acceptor.take() {
            acceptor.join().expect("acceptor thread panicked");
        }
        // Half-close the read side of every connection: readers see EOF
        // after the frame they are currently decoding, while responses
        // to already-queued batches still go out on the write side.
        for conn in self.conns.lock().expect("connection registry poisoned").iter() {
            let _ = conn.shutdown(Shutdown::Read);
        }
        let readers = std::mem::take(&mut *self.readers.lock().expect("reader registry poisoned"));
        for reader in readers {
            reader.join().expect("reader thread panicked");
        }
        // Closing the job queue lets the workers drain what was accepted
        // and then exit; their retrain senders drop with them, which in
        // turn lets the retrainer drain, fold once more and report.
        self.job_tx = None;
        for worker in self.workers.drain(..) {
            worker.join().expect("worker thread panicked");
        }
        let retrain = self.retrainer.take().expect("shutdown runs once").join().expect("retrainer thread panicked");
        ServeReport { stats: self.counters.snapshot(), retrain }
    }
}

fn accept_loop(
    listener: &TcpListener,
    shutdown: &AtomicBool,
    counters: &Arc<Counters>,
    conns: &Mutex<Vec<TcpStream>>,
    readers: &Mutex<Vec<JoinHandle<()>>>,
    job_tx: &SyncSender<Job>,
    queue_depth: usize,
) {
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                counters.connections.fetch_add(1, Ordering::Relaxed);
                stream.set_nonblocking(false).expect("restore blocking mode");
                // Frames go out as length prefix + payload; without
                // nodelay, Nagle holds the payload for the delayed ACK
                // and every round trip eats ~40ms.
                let _ = stream.set_nodelay(true);
                let registered = stream.try_clone().expect("clone connection for shutdown registry");
                conns.lock().expect("connection registry poisoned").push(registered);
                let writer = Arc::new(Mutex::new(stream.try_clone().expect("clone connection for writes")));
                let job_tx = job_tx.clone();
                let counters = Arc::clone(counters);
                let handle = std::thread::spawn(move || reader_loop(stream, &writer, &job_tx, queue_depth, &counters));
                readers.lock().expect("reader registry poisoned").push(handle);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => break,
        }
    }
}

fn respond(conn: &Mutex<TcpStream>, resp: &Response) {
    // A client that hung up mid-batch is not the server's problem; the
    // write error is deliberately dropped.
    let payload = protocol::encode_response(resp);
    let mut stream = conn.lock().expect("connection writer poisoned");
    let _ = protocol::write_frame(&mut *stream, &payload);
}

fn reader_loop(
    mut stream: TcpStream,
    writer: &Arc<Mutex<TcpStream>>,
    job_tx: &SyncSender<Job>,
    queue_depth: usize,
    counters: &Counters,
) {
    loop {
        let payload = match protocol::read_frame(&mut stream) {
            Ok(Some(payload)) => payload,
            Ok(None) => return,
            Err(_) => return,
        };
        let request = match protocol::decode_batch_request(&payload) {
            Ok(request) => request,
            Err(e) => {
                counters.protocol_errors.fetch_add(1, Ordering::Relaxed);
                respond(writer, &Response::Error { detail: e.to_string() });
                return;
            }
        };
        let job = Job {
            batch_id: request.batch_id,
            benchmark: request.benchmark,
            methods: request.methods,
            conn: Arc::clone(writer),
        };
        if let Err(TrySendError::Full(job)) = job_tx.try_send(job) {
            counters.batches_shed.fetch_add(1, Ordering::Relaxed);
            let depth = u32::try_from(queue_depth).unwrap_or(u32::MAX);
            respond(&job.conn, &Response::Busy { batch_id: job.batch_id, queue_depth: depth });
        }
    }
}

fn worker_loop(
    job_rx: &Mutex<Receiver<Job>>,
    store: &FilterStore,
    key: &FilterKey,
    config: &ServeConfig,
    counters: &Counters,
    retrain_tx: &SyncSender<(String, Vec<Method>)>,
) {
    let machine = config.machine.clone();
    let mut unit_server = UnitServer::new(&machine, config.options.policy);
    loop {
        // Holding the lock across the blocking recv is fine: an idle
        // worker parks here, and a woken one releases the lock the
        // moment it owns a job.
        let job = match job_rx.lock().expect("job queue poisoned").recv() {
            Ok(job) => job,
            Err(_) => return,
        };
        // One snapshot for the whole batch: every unit below is decided
        // by this epoch, no matter how many swaps land meanwhile.
        let snapshot = store.get(key).expect("the served key is published at bind time");
        let mut totals = FilteredPass::default();
        let mut units = Vec::new();
        for method in &job.methods {
            match config.options.scope {
                ScopeKind::Block => {
                    for block in method.blocks() {
                        units.push(unit_server.serve_block(
                            block.insts(),
                            block.exec_count(),
                            snapshot.compiled(),
                            &config.decision,
                            &mut totals,
                        ));
                    }
                }
                ScopeKind::Superblock(ratio) => {
                    for sb in form_superblocks(method, ratio) {
                        units.push(unit_server.serve_superblock(
                            &sb,
                            snapshot.compiled(),
                            &config.decision,
                            &mut totals,
                        ));
                    }
                }
            }
        }
        counters.batches_served.fetch_add(1, Ordering::Relaxed);
        counters.units_served.fetch_add(totals.total_blocks as u64, Ordering::Relaxed);
        counters.units_scheduled.fetch_add(totals.scheduled_blocks as u64, Ordering::Relaxed);
        respond(
            &job.conn,
            &Response::Batch(BatchResult { batch_id: job.batch_id, epoch: snapshot.epoch(), totals, units }),
        );
        // Blocking send: when the retrainer falls behind, serving slows
        // down instead of dropping observations. With retraining
        // disabled there is nothing to observe for, so the batch is not
        // forwarded at all. The disconnect case (teardown) cannot
        // happen before shutdown joins the workers, but is harmless to
        // ignore.
        if config.retrain_every > 0 {
            let _ = retrain_tx.send((job.benchmark, job.methods));
        }
    }
}
