//! The online retraining loop: served methods come in, observed trace
//! records accumulate, and every `retrain_every` records the learner
//! re-runs and hot-swaps the deployed filter.
//!
//! Observation happens *off* the hot path: the workers schedule against
//! the compiled snapshot with no instrumentation, and this thread
//! re-runs the full instrumented collector
//! ([`collect_method_trace`]) over the same methods to produce the
//! labeled records — exactly the ones the offline pipeline would have
//! collected, so an online-retrained filter and an offline-trained one
//! see the same training distribution.

use crate::server::ServeConfig;
use std::sync::mpsc::Receiver;
use wts_core::{collect_method_trace, train_filter, write_trace_binary, FilterKey, FilterStore, TraceRecord};
use wts_ir::Method;

/// What the retraining thread did over the instance's lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RetrainReport {
    /// Observed trace records absorbed into the training corpus — one
    /// per served scope unit, so a lossless drain means this equals the
    /// server's `units_served`.
    pub records_absorbed: u64,
    /// Completed fold-and-swap cycles (including the final drain fold).
    pub retrains: u64,
    /// Epoch of the last filter this thread published (0 when it never
    /// swapped).
    pub last_epoch: u64,
    /// Corpus records written to `ServeConfig::persist_corpus` at
    /// shutdown (seed traces plus absorbed observations). 0 when
    /// persistence is not configured or the write failed.
    pub records_persisted: u64,
}

/// Runs until every sender hangs up, then performs a final fold if any
/// records are pending and returns the tally.
pub(crate) fn retrain_loop(
    rx: &Receiver<(String, Vec<Method>)>,
    store: &FilterStore,
    key: &FilterKey,
    config: &ServeConfig,
) -> RetrainReport {
    let options = config.options;
    let train_config = config.train_config();
    let mut corpus: Vec<TraceRecord> = config.seed_traces.clone();
    let mut pending = 0usize;
    let mut report = RetrainReport::default();
    while let Ok((benchmark, methods)) = rx.recv() {
        for method in &methods {
            let records = collect_method_trace(&benchmark, method, &config.machine, &options);
            report.records_absorbed += records.len() as u64;
            pending += records.len();
            corpus.extend(records);
        }
        if config.retrain_every > 0 && pending >= config.retrain_every {
            fold(store, key, &train_config, &corpus, &mut report);
            pending = 0;
        }
    }
    // The senders are gone: the queue is fully drained. Records that
    // arrived since the last fold still deserve to influence the filter
    // a restarted instance would seed from.
    if config.retrain_every > 0 && pending > 0 {
        fold(store, key, &train_config, &corpus, &mut report);
    }
    if let Some(path) = &config.persist_corpus {
        report.records_persisted = persist(path, &corpus);
    }
    report
}

/// Writes the corpus to `path` in the `schedfilter-trace-bin-v1`
/// format. Persistence is best-effort: a failed encode or write is
/// reported on stderr and the drain still completes, because losing a
/// seed corpus must never turn a clean shutdown into a panic.
fn persist(path: &std::path::Path, corpus: &[TraceRecord]) -> u64 {
    let bytes = match write_trace_binary(corpus) {
        Ok(bytes) => bytes,
        Err(e) => {
            eprintln!("wts-serve: failed to encode the retrain corpus for {}: {e}", path.display());
            return 0;
        }
    };
    match std::fs::write(path, bytes) {
        Ok(()) => corpus.len() as u64,
        Err(e) => {
            eprintln!("wts-serve: failed to persist the retrain corpus to {}: {e}", path.display());
            0
        }
    }
}

fn fold(
    store: &FilterStore,
    key: &FilterKey,
    train_config: &wts_core::TrainConfig,
    corpus: &[TraceRecord],
    report: &mut RetrainReport,
) {
    let filter = train_filter(corpus, train_config);
    report.last_epoch = store.swap(key.clone(), filter).epoch();
    report.retrains += 1;
}
