//! A hot-swappable scheduling-filter service over the paper's deployed
//! fast path.
//!
//! Footnote 4 of Cavazos & Moss contemplates shipping "tools to end
//! users so that they could develop their own training sets and
//! retrain". This crate is that tool grown into a daemon: a std-only
//! TCP server that accepts length-prefixed binary batches of compilation
//! units, schedules each against the currently deployed
//! [`FilterSnapshot`](wts_core::FilterSnapshot), streams the schedules
//! back, and feeds every served unit's observed trace record to a
//! background retrainer that periodically folds the growing corpus into
//! a new filter and hot-swaps it into the shared
//! [`FilterStore`](wts_core::FilterStore) — epoch-tagged, without
//! pausing serving.
//!
//! The serving fast path is [`wts_core::UnitServer`] — the *same*
//! per-unit body as [`wts_core::filtered_schedule_pass_with`], so a
//! batch's reported totals are bit-identical (work channels) to running
//! the pass directly over the same methods. Backpressure is explicit:
//! a bounded job queue, and a [`Response::Busy`] shed frame when it is
//! full. Shutdown drains: accepted batches are answered and their
//! observations absorbed before the threads join.
//!
//! # Examples
//!
//! ```
//! use wts_core::collect_trace;
//! use wts_machine::MachineConfig;
//! use wts_serve::{Response, ServeClient, ServeConfig, Server};
//!
//! let machine = MachineConfig::ppc7410();
//! let programs = wts_core::testutil::learnable_suite(2);
//! let seed = programs.iter().flat_map(|p| collect_trace(p, &machine)).collect();
//!
//! let mut config = ServeConfig::new(machine, seed);
//! config.learner = wts_core::LearnerKind::Stump;
//! let handle = Server::bind("127.0.0.1:0", config).expect("bind");
//!
//! let mut client = ServeClient::connect(handle.local_addr()).expect("connect");
//! let resp = client.request(1, programs[0].name(), programs[0].methods()).expect("serve");
//! match resp {
//!     Response::Batch(batch) => {
//!         assert_eq!(batch.units.len(), programs[0].block_count());
//!         assert_eq!(batch.epoch, 1);
//!     }
//!     other => panic!("expected a batch result, got {other:?}"),
//! }
//!
//! let report = handle.shutdown();
//! assert_eq!(report.stats.batches_served, 1);
//! assert_eq!(report.retrain.records_absorbed, report.stats.units_served);
//! ```

// The wire codec is all narrowing conversions; hold the whole crate to
// the same lossless-cast bar CI enforces on the verifier-audited crates
// (the workspace clippy pass runs with `-D warnings`, so these warns
// are denied).
#![warn(clippy::cast_possible_truncation, clippy::cast_sign_loss)]

mod client;
mod protocol;
mod retrain;
mod server;

pub use client::ServeClient;
pub use protocol::{
    decode_batch_request, decode_response, encode_batch_request, encode_response, read_frame, write_frame,
    BatchRequest, BatchResult, Response, MAX_FRAME_BYTES,
};
pub use retrain::RetrainReport;
pub use server::{ServeConfig, ServeReport, ServeStats, Server, ServerHandle};
