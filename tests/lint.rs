//! The standing wts-lint invariant future PRs inherit: every filter the
//! pipeline can produce — any registry machine × any portfolio learner ×
//! either scope, every LOOCV fold and the factory rule set — lints
//! clean under the `wts-verify` model analysis and carries a
//! hard-threshold equivalence proof, and the faithful serve/store
//! protocol models check clean. The mutation tests are the teeth: each
//! of the four defect classes (shadowed rule, demand-mask drift,
//! non-finite threshold, epoch-regressing swap) is caught with its named
//! diagnostic while the unmutated twin stays clean, so a lint that rots
//! into a no-op fails here, not in production.

use schedfilter::filters::{
    collect_trace_with, train_filter, train_loocv, CompiledFilter, CompiledFilterError, Filter, LearnedFilter, Learner,
    LearnerKind, ScopeKind, TimingMode, TraceOptions, TraceRecord, TrainConfig,
};
use schedfilter::ripper::{Rule, RuleSet};
use schedfilter::verify::{
    check_serve_protocol, check_store_protocol, lint_model, prove_hard_threshold, render, DrainModel, ModelTable,
    ServeProtoConfig, ShedModel, SnapshotModel, StoreProtoConfig, SwapModel,
};
use wts_features::FeatureMask;
use wts_machine::{registry, MachineConfig};

fn corpus(machine: &MachineConfig, scope: ScopeKind) -> Vec<TraceRecord> {
    let opts = TraceOptions { timing: TimingMode::Deterministic, scope, ..TraceOptions::default() };
    wts_core::testutil::learnable_suite(3).iter().flat_map(|p| collect_trace_with(p, machine, &opts)).collect()
}

fn model_table(filter: &LearnedFilter, artifact: &str) -> ModelTable {
    let compiled = filter.compile();
    ModelTable::from_rule_set(filter.rules(), compiled.demand(), artifact)
}

fn assert_clean(filter: &LearnedFilter, artifact: &str) {
    let table = model_table(filter, artifact);
    let diags = lint_model(&table);
    assert!(diags.is_empty(), "{artifact}:\n{}", render(&diags));
    assert!(prove_hard_threshold(&table).holds(), "{artifact}: the decide ≡ score≥t proof must hold");
}

/// Every pipeline-producible filter lints clean with the equivalence
/// proof held: all registry machines × all portfolio backends × both
/// scopes, the factory rule set and every LOOCV fold.
#[test]
fn every_pipeline_producible_filter_lints_clean() {
    let mut linted = 0usize;
    for machine in registry() {
        for scope in [ScopeKind::Block, ScopeKind::Superblock(70)] {
            let traces = corpus(&machine, scope);
            for learner in LearnerKind::portfolio() {
                let config = TrainConfig::with_learner(0, learner.clone()).with_scope(scope);
                let tag = format!("{}/{scope:?}/{}", machine.name(), learner.name());
                assert_clean(&train_filter(&traces, &config), &format!("{tag}/factory"));
                for (bench, fold) in train_loocv(&traces, &config) {
                    assert_clean(&fold, &format!("{tag}/{bench}"));
                    linted += 1;
                }
            }
        }
    }
    assert!(linted > 20, "the sweep must cover a real filter population, linted {linted}");
}

/// A RIPPER filter trained on the learnable corpus — the mutation
/// tests' "unmutated twin".
fn trained() -> LearnedFilter {
    let machine = MachineConfig::ppc7410();
    train_filter(&corpus(&machine, ScopeKind::Block), &TrainConfig::with_threshold(0))
}

/// Mutation class 1 — shadowed rule: duplicating an existing rule at
/// the end of the table makes the copy unreachable (every unit it
/// accepts fires the original first), and the interval-reachability
/// lint names exactly that.
#[test]
fn mutation_shadowed_rule_is_caught_and_the_twin_is_clean() {
    let filter = trained();
    let mut table = model_table(&filter, "shadow-mutant");
    assert!(lint_model(&table).is_empty(), "the twin lints clean");
    assert!(!table.rules.is_empty(), "the learnable corpus induces at least one rule");

    table.rules.push(table.rules[0].clone());
    table.scores.push(0.9);
    let diags = lint_model(&table);
    let shadowed = format!("rule {} is shadowed by rule 0", table.rules.len() - 1);
    assert!(diags.iter().any(|d| d.message.contains(&shadowed)), "expected '{shadowed}', got:\n{}", render(&diags));
}

/// Mutation class 2 — demand-mask drift: dropping one read feature from
/// the mask means masked extraction leaves it 0 and deployed decisions
/// diverge from the source rules; the lint reports it as an error
/// naming the omitted feature.
#[test]
fn mutation_demand_mask_mismatch_is_caught_and_the_twin_is_clean() {
    let filter = trained();
    let mut table = model_table(&filter, "mask-mutant");
    assert!(lint_model(&table).is_empty(), "the twin lints clean");
    let victim = table.reads().kinds().next().expect("the trained filter reads at least one feature");

    table.demand = FeatureMask::of(table.demand.kinds().filter(|&k| k != victim));
    let diags = lint_model(&table);
    assert!(
        diags.iter().any(|d| d.message.contains("demand mask") && d.message.contains(&format!("omits {victim}"))),
        "expected a demand-mask omission error for {victim}, got:\n{}",
        render(&diags)
    );

    // The opposite drift — a mask wider than the reads — is wasted
    // extraction work, a warning.
    let mut wide = model_table(&filter, "mask-mutant-wide");
    wide.demand = FeatureMask::ALL;
    assert!(lint_model(&wide).iter().any(|d| d.message.contains("wasted extraction work")), "a too-wide mask warns");
}

/// Mutation class 3 — non-finite threshold: caught twice, by the model
/// lint on the condition table and by `CompiledFilter::try_from_rule_set`
/// at lowering time with the named `NonFiniteThreshold` error.
#[test]
fn mutation_non_finite_threshold_is_caught_and_the_twin_is_clean() {
    let filter = trained();
    let table = model_table(&filter, "nan-mutant");
    assert!(lint_model(&table).is_empty(), "the twin lints clean");
    let rs = filter.rules();
    assert!(CompiledFilter::try_from_rule_set(rs, "twin").is_ok(), "the twin lowers clean");

    let mut rules: Vec<Rule> = rs.rules().to_vec();
    let target = rules.iter().position(|r| !r.is_empty()).expect("a rule with conditions exists");
    let mut conds = rules[target].conditions().to_vec();
    conds[0].threshold = f64::NAN;
    rules[target] = Rule::from_conditions(conds);
    let mutated = RuleSet::new(
        rs.attr_names().to_vec(),
        rs.pos_label(),
        rs.neg_label(),
        rules,
        rs.stats().to_vec(),
        *rs.default_stats(),
    );

    let err = CompiledFilter::try_from_rule_set(&mutated, "nan-mutant").expect_err("lowering rejects NaN");
    assert!(matches!(err, CompiledFilterError::NonFiniteThreshold { rule, .. } if rule == target), "{err}");
    assert!(err.to_string().contains("non-finite threshold"), "{err}");

    let compiled = filter.compile();
    let table = ModelTable::from_rule_set(&mutated, compiled.demand(), "nan-mutant");
    assert!(
        lint_model(&table).iter().any(|d| d.message.contains("non-finite threshold")),
        "the model lint names the defect too"
    );
}

/// Mutation class 4 — epoch-regressing swap: under the faithful atomic
/// publication model the store protocol checks clean; under the
/// read-then-write mutant two concurrent writers interleave into an
/// epoch regression, and the model checker's exhaustive search finds
/// the exact trace.
#[test]
fn mutation_epoch_regressing_swap_is_caught_and_the_twin_is_clean() {
    let twin = check_store_protocol(StoreProtoConfig::default());
    assert!(twin.is_clean(), "the atomic-swap model is clean:\n{}", render(&twin.diagnostics));
    assert!(twin.states > 10, "the explorer visited a real state space");

    let mutant = check_store_protocol(StoreProtoConfig { swap: SwapModel::ReadThenWrite, ..Default::default() });
    assert!(
        mutant.diagnostics.iter().any(|d| d.message.contains("regressed the epoch")),
        "expected an epoch regression, got:\n{}",
        render(&mutant.diagnostics)
    );
}

/// The remaining protocol knobs each produce their named diagnostic
/// while the faithful defaults stay clean: a per-unit snapshot splits a
/// batch across a swap, a retrying shed duplicates a response, and a
/// drop-pending drain loses records the retrainer should have absorbed.
#[test]
fn mutation_protocol_knobs_each_fire_their_named_diagnostic() {
    let split = check_store_protocol(StoreProtoConfig { snapshot: SnapshotModel::PerUnit, ..Default::default() });
    assert!(
        split.diagnostics.iter().any(|d| d.message.contains("batch split across a swap")),
        "expected a batch split, got:\n{}",
        render(&split.diagnostics)
    );

    let twin = check_serve_protocol(ServeProtoConfig::default());
    assert!(twin.is_clean(), "the faithful serve model is clean:\n{}", render(&twin.diagnostics));

    let dup = check_serve_protocol(ServeProtoConfig { shed: ShedModel::RejectAndRetry, ..Default::default() });
    assert!(
        dup.diagnostics.iter().any(|d| d.message.contains("duplicate response")),
        "expected a duplicate response, got:\n{}",
        render(&dup.diagnostics)
    );

    let lost = check_serve_protocol(ServeProtoConfig { drain: DrainModel::DropPending, ..Default::default() });
    assert!(
        lost.diagnostics.iter().any(|d| d.message.contains("drain lost records")),
        "expected drain loss, got:\n{}",
        render(&lost.diagnostics)
    );
}

/// The CI-enabled `repro lint` smoke test: at realistic scale, the full
/// sweep — every registry machine × portfolio backend × scope fold,
/// plus the two protocol machines — reports zero diagnostics with every
/// equivalence proof held.
#[test]
#[ignore = "lint smoke test: realistic scale; CI runs it with -- --ignored"]
fn lint_smoke_all_clean_at_scale() {
    use schedfilter::experiments::Experiments;
    let e = Experiments::new(0.05);
    let table = e.lint(&e.matrix(), &e.superblock_matrix());
    assert_eq!(table.row_count(), registry().len() + 2, "one row per machine plus the protocol machines");
    for row in 0..table.row_count() {
        let total: usize = table.cell(row, 5).parse().unwrap();
        assert_eq!(total, 0, "{}: {total} diagnostics at scale", table.cell(row, 0));
    }
}
