//! Integration coverage of the extension APIs (superblocks, adaptive
//! compilation, speculative scheduling) through the facade crate.

use schedfilter::deps::DepGraph;
use schedfilter::filters::AlwaysSchedule;
use schedfilter::jit::{app_cycles, form_superblocks, superblock_gain, CompileSession};
use schedfilter::prelude::*;

#[test]
fn speculative_graphs_are_weaker_than_normal_graphs() {
    // Every speculative edge set is a subset of the normal one: any
    // legal normal schedule is also a legal speculative schedule.
    let suite = Suite::fp(0.02);
    let mut checked = 0;
    for bench in suite.benchmarks() {
        for (_, block) in bench.program().iter_blocks().take(100) {
            let normal = DepGraph::build(block.insts());
            let spec = DepGraph::build_speculative(block.insts());
            for i in 0..normal.len() {
                for &(s, _) in spec.succs(i) {
                    assert!(normal.has_edge(i, s as usize), "speculative edge {i}->{s} missing from the normal graph");
                }
            }
            checked += 1;
        }
    }
    assert!(checked >= 100);
}

#[test]
fn superblock_pipeline_end_to_end() {
    let machine = MachineConfig::ppc7410();
    let suite = Suite::fp(0.03);
    let program = suite.benchmarks()[1].program();

    // Formation covers every block exactly once per method.
    for method in program.methods() {
        let sbs = form_superblocks(method, 70);
        let covered: usize = sbs.iter().map(|sb| sb.width()).sum();
        assert_eq!(covered, method.blocks().len());
        let mut ids: Vec<u32> = sbs.iter().flat_map(|sb| sb.block_ids.iter().copied()).collect();
        ids.sort_unstable();
        let mut expect: Vec<u32> = method.blocks().iter().map(|b| b.id().0).collect();
        expect.sort_unstable();
        assert_eq!(ids, expect, "superblocks partition the method");
    }

    let g = superblock_gain(program, &machine, 70);
    assert!(g.superblock <= g.local && g.local <= g.unscheduled);
}

#[test]
fn adaptive_jit_with_filter_is_cheapest_configuration() {
    let machine = MachineConfig::ppc7410();
    let suite = Suite::specjvm98(0.04);
    let program = suite.benchmarks()[0].program();
    let session = CompileSession::new(&machine);

    let (_, full) = session.compile(program, &AlwaysSchedule);
    let (_, hot_ls) = session.compile_adaptive(program, &AlwaysSchedule, 100);
    let filter = SizeThresholdFilter::new(8);
    let (compiled, hot_ln) = session.compile_adaptive(program, &filter, 100);

    assert!(hot_ls.scheduled_blocks < full.scheduled_blocks);
    assert!(hot_ln.scheduled_blocks <= hot_ls.scheduled_blocks);
    assert!(app_cycles(&compiled, &machine) <= app_cycles(program, &machine));
    compiled.validate().expect("adaptive output validates");
}

#[test]
fn speculative_scheduling_wins_in_aggregate() {
    // Greedy scheduling with extra freedom can lose on an individual
    // trace (superblock_gain clamps those), but per trace it can never
    // be worse than the unscheduled order, and across the corpus it must
    // come out ahead of barrier-respecting scheduling.
    let machine = MachineConfig::ppc7410();
    let suite = Suite::fp(0.02);
    let scheduler = ListScheduler::new(&machine);
    let mut local_total = 0u64;
    let mut spec_total = 0u64;
    for bench in suite.benchmarks().iter().take(2) {
        for method in bench.program().methods().iter().take(30) {
            for sb in form_superblocks(method, 70) {
                let local = scheduler.schedule_insts(&sb.insts);
                let spec = scheduler.schedule_superblock(&sb.insts);
                assert!(spec.cycles_after <= spec.cycles_before, "guard must hold");
                local_total += local.cycles_after;
                spec_total += spec.cycles_after;
            }
        }
    }
    assert!(spec_total <= local_total, "speculation should win in aggregate: {spec_total} vs {local_total}");
}
