//! Determinism guarantees: the whole artifact-generation path is
//! bit-stable run to run (and therefore across machines), which is what
//! makes EXPERIMENTS.md's recorded numbers reproducible.

use schedfilter::filters::{collect_trace, train_filter, TrainConfig};
use schedfilter::prelude::*;

#[test]
fn suites_are_bit_stable() {
    let a = Suite::specjvm98(0.03);
    let b = Suite::specjvm98(0.03);
    assert_eq!(a, b);
    assert_eq!(Suite::fp(0.03), Suite::fp(0.03));
}

#[test]
fn traces_are_deterministic_except_wall_clock() {
    let machine = MachineConfig::ppc7410();
    let suite = Suite::specjvm98(0.03);
    let p = suite.benchmarks()[0].program();
    let a = collect_trace(p, &machine);
    let b = collect_trace(p, &machine);
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.features, y.features);
        assert_eq!(x.est_unsched, y.est_unsched);
        assert_eq!(x.est_sched, y.est_sched);
        assert_eq!(x.hw_unsched, y.hw_unsched);
        assert_eq!(x.hw_sched, y.hw_sched);
        assert_eq!(x.sched_work, y.sched_work);
        assert_eq!(x.feature_work, y.feature_work);
        // sched_ns / feature_ns are wall-clock and may differ.
    }
}

#[test]
fn trained_filters_are_deterministic() {
    let machine = MachineConfig::ppc7410();
    let suite = Suite::specjvm98(0.03);
    let mut traces = Vec::new();
    for bench in suite.benchmarks() {
        traces.extend(collect_trace(bench.program(), &machine));
    }
    let a = train_filter(&traces, &TrainConfig::with_threshold(10));
    let b = train_filter(&traces, &TrainConfig::with_threshold(10));
    assert_eq!(a.rules().to_string(), b.rules().to_string());
}

#[test]
fn scheduler_output_is_deterministic() {
    let machine = MachineConfig::ppc7410();
    let suite = Suite::fp(0.03);
    let scheduler = ListScheduler::new(&machine);
    for bench in suite.benchmarks() {
        for (_, block) in bench.program().iter_blocks().take(50) {
            let a = scheduler.schedule_block(block);
            let b = scheduler.schedule_block(block);
            assert_eq!(a, b);
        }
    }
}

#[test]
fn scale_is_monotone_in_corpus_size() {
    let small = Suite::specjvm98(0.02);
    let bigger = Suite::specjvm98(0.05);
    assert!(bigger.block_count() > small.block_count());
}
