//! Determinism of the parallel pipeline paths: method-sharded trace
//! collection, sharded compilation and fold-sharded LOOCV training must
//! all be indistinguishable from their serial counterparts — same
//! records, same order, and (under deterministic timing) byte-identical
//! serialized output.

use schedfilter::filters::{
    collect_trace_with, write_trace, Experiment, SizeThresholdFilter, TimingMode, TraceOptions,
};
use schedfilter::jit::CompileSession;
use schedfilter::prelude::*;

const SCALE: f64 = 0.04;

fn serial_opts() -> TraceOptions {
    TraceOptions { threads: 1, timing: TimingMode::Deterministic, ..Default::default() }
}

#[test]
fn sharded_traces_equal_serial_in_order() {
    let machine = MachineConfig::ppc7410();
    let suite = Suite::specjvm98(SCALE);
    for bench in suite.benchmarks() {
        let serial = collect_trace_with(bench.program(), &machine, &serial_opts());
        for threads in [2, 3, 8] {
            let sharded = collect_trace_with(bench.program(), &machine, &TraceOptions { threads, ..serial_opts() });
            assert_eq!(
                serial,
                sharded,
                "{}: sharded trace ({threads} threads) must equal the serial path record-for-record",
                bench.name()
            );
        }
    }
}

#[test]
fn sharded_trace_files_are_byte_identical() {
    let machine = MachineConfig::ppc7410();
    let suite = Suite::fp(SCALE);
    let program = suite.benchmarks()[0].program();
    let serial = write_trace(&collect_trace_with(program, &machine, &serial_opts())).unwrap();
    let sharded =
        write_trace(&collect_trace_with(program, &machine, &TraceOptions { threads: 4, ..serial_opts() })).unwrap();
    assert_eq!(serial, sharded, "serialized trace files must be byte-identical");
}

#[test]
fn sharded_compile_sessions_equal_serial() {
    let machine = MachineConfig::ppc7410();
    let suite = Suite::fp(SCALE);
    let session = CompileSession::new(&machine);
    let filter = SizeThresholdFilter::new(5);
    for bench in suite.benchmarks() {
        let (serial, serial_stats) = session.compile(bench.program(), &filter);
        let (sharded, sharded_stats) = session.compile_sharded(bench.program(), &filter, 4);
        assert_eq!(serial, sharded, "{}: sharded compile must be identical", bench.name());
        assert_eq!(serial_stats.scheduled_blocks, sharded_stats.scheduled_blocks);
        assert_eq!(serial_stats.total_blocks, sharded_stats.total_blocks);
    }
}

#[test]
fn experiment_pipeline_is_thread_count_invariant() {
    let programs = || Suite::specjvm98(SCALE).benchmarks().iter().map(|b| b.program().clone()).collect::<Vec<_>>();
    let serial = Experiment::new(MachineConfig::ppc7410())
        .with_threads(1)
        .with_timing(TimingMode::Deterministic)
        .run(programs());
    let sharded = Experiment::new(MachineConfig::ppc7410())
        .with_threads(6)
        .with_timing(TimingMode::Deterministic)
        .run(programs());

    assert_eq!(serial.all_traces(), sharded.all_traces(), "trace stage must be thread-count invariant");
    assert_eq!(
        write_trace(serial.all_traces()).unwrap(),
        write_trace(sharded.all_traces()).unwrap(),
        "serialized corpus must be byte-identical"
    );
    // Fold-sharded training must induce the same rule sets.
    let a = serial.loocv_filters(20);
    let b = sharded.loocv_filters(20);
    assert_eq!(a.len(), b.len());
    for ((na, fa), (nb, fb)) in a.iter().zip(b.iter()) {
        assert_eq!(na, nb);
        assert_eq!(fa.rules().to_string(), fb.rules().to_string(), "{na}: rules must match");
    }
}
