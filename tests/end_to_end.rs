//! End-to-end integration: generate → trace → label → train → evaluate,
//! across every crate in the workspace.

use schedfilter::filters::{
    app_time_ratio, classification_matrix, collect_trace, predicted_time_ratio, runtime_classification,
    sched_time_ratio, train_filter, train_loocv, AlwaysSchedule, Filter, LabelConfig, NeverSchedule, TrainConfig,
};
use schedfilter::jit::{app_cycles, CompileSession};
use schedfilter::prelude::*;

const SCALE: f64 = 0.05;

fn jvm98_traces() -> Vec<TraceRecord> {
    let machine = MachineConfig::ppc7410();
    let suite = Suite::specjvm98(SCALE);
    let mut traces = Vec::new();
    for bench in suite.benchmarks() {
        traces.extend(collect_trace(bench.program(), &machine));
    }
    traces
}

#[test]
fn full_pipeline_produces_working_filter() {
    let traces = jvm98_traces();
    assert!(traces.len() > 500, "corpus too small: {}", traces.len());

    let filter = train_filter(&traces, &TrainConfig::with_threshold(0));
    // The filter must beat the trivial strategies on the trade-off:
    // cheaper than LS, more effective than NS.
    let times = sched_time_ratio(&traces, &filter);
    assert!(times.work_ratio() < 1.0, "filter must reduce scheduling work");
    assert!(times.scheduled_blocks > 0, "filter must schedule something");

    let app_f = app_time_ratio(&traces, &filter);
    let app_ls = app_time_ratio(&traces, &AlwaysSchedule);
    let app_ns = app_time_ratio(&traces, &NeverSchedule);
    assert_eq!(app_ns, 1.0);
    assert!(app_ls < 1.0, "scheduling everything must help overall");
    assert!(app_f < 1.0, "the filter must keep some of the benefit");
    // The paper's headline: >90% of the benefit. Grant slack at tiny
    // scale, but demand a solid majority.
    let kept = (1.0 - app_f) / (1.0 - app_ls);
    assert!(kept > 0.6, "filter keeps only {:.0}% of the benefit", kept * 100.0);
}

#[test]
fn loocv_filters_generalize_to_held_out_benchmarks() {
    let traces = jvm98_traces();
    let folds = train_loocv(&traces, &TrainConfig::with_threshold(0));
    assert_eq!(folds.len(), 7);
    for (bench, filter) in &folds {
        let own: Vec<TraceRecord> = traces.iter().filter(|r| &r.benchmark == bench).cloned().collect();
        let m = classification_matrix(&own, filter, LabelConfig::new(0));
        assert!(m.total() > 0);
        assert!(m.error_percent() < 35.0, "{bench}: error {:.1}% is worse than near-trivial", m.error_percent());
    }
}

#[test]
fn threshold_raises_efficiency_and_shrinks_ls_predictions() {
    let traces = jvm98_traces();
    let f0 = train_filter(&traces, &TrainConfig::with_threshold(0));
    let f40 = train_filter(&traces, &TrainConfig::with_threshold(40));
    let c0 = runtime_classification(&traces, &f0);
    let c40 = runtime_classification(&traces, &f40);
    assert!(c40.ls < c0.ls, "higher threshold should schedule fewer blocks ({} vs {})", c40.ls, c0.ls);
    let w0 = sched_time_ratio(&traces, &f0).work_ratio();
    let w40 = sched_time_ratio(&traces, &f40).work_ratio();
    assert!(w40 < w0, "t=40 must be cheaper than t=0 ({w40} vs {w0})");
}

#[test]
fn predicted_improvement_exceeds_measured_improvement() {
    // The methodological gap the paper reports: the cheap labeling
    // simulator over-predicts what the (dynamic) machine realizes.
    let traces = jvm98_traces();
    let predicted = predicted_time_ratio(&traces, &AlwaysSchedule) / 100.0;
    let measured = app_time_ratio(&traces, &AlwaysSchedule);
    assert!(predicted < measured, "predicted {predicted} should beat measured {measured}");
}

#[test]
fn compile_session_agrees_with_trace_based_eval() {
    let machine = MachineConfig::ppc7410();
    let suite = Suite::specjvm98(SCALE);
    let program = suite.benchmarks()[4].program(); // mpegaudio: schedulable
    let traces = collect_trace(program, &machine);
    let filter = train_filter(&traces, &TrainConfig::with_threshold(0));

    let session = CompileSession::new(&machine);
    let (compiled, stats) = session.compile(program, &filter);
    let counts = runtime_classification(&traces, &filter);
    assert_eq!(stats.scheduled_blocks, counts.ls, "session and eval must agree on the filter's decisions");

    // app_cycles of the compiled program equals the trace-based ratio.
    let direct = app_cycles(&compiled, &machine) as f64 / app_cycles(program, &machine) as f64;
    let from_traces = app_time_ratio(&traces, &filter);
    assert!((direct - from_traces).abs() < 1e-9, "{direct} vs {from_traces}");
}

#[test]
fn factory_deployment_round_trip() {
    // The paper's deployment story: trace at the factory, ship the trace
    // file, train, ship the rules listing, install it in the compiler.
    use schedfilter::filters::{read_trace, write_trace, LearnedFilter};
    use schedfilter::ripper::parse_rule_set;

    let traces = jvm98_traces();
    // Trace file round trip.
    let text = write_trace(&traces).expect("generated benchmark names are tab-free");
    let back = read_trace(&text).expect("trace file must parse");
    assert_eq!(back, traces);

    // Train, print, re-parse the rules, and check the filters agree on
    // every block in the corpus.
    let trained = train_filter(&back, &TrainConfig::with_threshold(10));
    let listing = trained.rules().to_string();
    let attrs: Vec<String> = wts_features::FeatureKind::ALL.iter().map(|k| k.rule_name().to_string()).collect();
    let reloaded = LearnedFilter::new(parse_rule_set(&listing, &attrs).expect("listing parses"), 10);
    for r in &traces {
        assert_eq!(
            trained.should_schedule(&r.features),
            reloaded.should_schedule(&r.features),
            "parsed filter must make identical decisions"
        );
    }
}

#[test]
fn scheduled_programs_remain_valid_and_semantically_ordered() {
    let machine = MachineConfig::ppc7410();
    let suite = Suite::fp(SCALE);
    let session = CompileSession::new(&machine);
    for bench in suite.benchmarks() {
        let (compiled, _) = session.compile(bench.program(), &AlwaysSchedule);
        compiled.validate().expect("scheduled IR validates");
        // Every block must be a dependence-respecting permutation of the
        // original (checked via the verifier on the original block).
        for (m_orig, m_new) in bench.program().methods().iter().zip(compiled.methods()) {
            for (b_orig, b_new) in m_orig.blocks().iter().zip(m_new.blocks()) {
                assert_eq!(b_orig.len(), b_new.len());
                assert_eq!(b_orig.exec_count(), b_new.exec_count());
                // Same multiset of instructions (a permutation) ...
                let mut orig: Vec<String> = b_orig.insts().iter().map(|i| i.to_string()).collect();
                let mut new: Vec<String> = b_new.insts().iter().map(|i| i.to_string()).collect();
                orig.sort();
                new.sort();
                assert_eq!(orig, new, "scheduling must permute, not rewrite");
                // ... that the cost model rates no worse than the original.
                let cm = CostModel::new(&machine);
                assert!(cm.block_cycles(b_new) <= cm.block_cycles(b_orig));
            }
        }
    }
}
