//! Shape tests: the qualitative claims of the paper's evaluation hold on
//! the reproduced system (who wins, in which direction curves move).
//! These run the real artifact pipeline at a reduced scale.

use schedfilter::experiments::{Experiments, SuiteKind, THRESHOLDS};

fn harness() -> Experiments {
    Experiments::new(0.04)
}

#[test]
fn most_blocks_do_not_benefit_from_scheduling() {
    // Paper Table 5: 8173 LS vs 37280 NS at t=0 (~18% LS).
    let e = harness();
    let t5 = e.table5();
    let ls: usize = t5.cell(0, 1).parse().unwrap();
    let title = t5.title().to_string();
    // NS count is embedded in the title: "... (NS constant at N)".
    let ns: usize = title.rsplit("at ").next().unwrap().trim_end_matches(')').parse().unwrap();
    assert!(ls * 2 < ns, "LS ({ls}) should be well under half of NS ({ns})");
}

#[test]
fn ls_training_counts_fall_steeply_with_threshold() {
    let e = harness();
    let t5 = e.table5();
    let first: usize = t5.cell(0, 1).parse().unwrap();
    let last: usize = t5.cell(0, THRESHOLDS.len()).parse().unwrap();
    assert!(last * 10 < first, "t=50 LS count {last} should be a tiny fraction of t=0's {first}");
}

#[test]
fn classification_error_improves_with_threshold() {
    // Paper Table 3: geometric mean falls from 7.86% (t=0) to 0.06% (t=50).
    let e = harness();
    let t3 = e.table3();
    let gm_col = t3.headers().len() - 1;
    let t0: f64 = t3.cell(0, gm_col).parse().unwrap();
    let t50: f64 = t3.cell(THRESHOLDS.len() - 1, gm_col).parse().unwrap();
    assert!(t50 < t0 / 2.0, "error should collapse with t: {t0} -> {t50}");
    assert!(t0 < 30.0, "t=0 error {t0}% should be far from coin-flipping");
}

#[test]
fn filters_preserve_most_of_the_scheduling_benefit() {
    // Paper Figure 1(b): LS .977, L/N .979 — 93% of the benefit.
    let e = harness();
    let pair = e.fig2();
    let gm = pair.app_time.headers().len() - 1;
    let ls: f64 = pair.app_time.cell(0, gm).parse().unwrap();
    let ln0: f64 = pair.app_time.cell(1, gm).parse().unwrap();
    assert!(ls < 1.0);
    let kept = (1.0 - ln0) / (1.0 - ls);
    assert!(kept > 0.6, "t=0 filter keeps {:.0}% of the benefit", kept * 100.0);
}

#[test]
fn filters_cut_scheduling_effort_and_threshold_cuts_it_further() {
    // Paper Figures 1(a)/2(a): 38% of LS cost at t=0 falling to ~6%.
    let e = harness();
    let pair = e.fig2();
    let work_col = pair.sched_time.headers().len() - 2;
    let t0: f64 = pair.sched_time.cell(0, work_col).parse().unwrap();
    let t50: f64 = pair.sched_time.cell(THRESHOLDS.len() - 1, work_col).parse().unwrap();
    assert!(t0 < 1.0, "t=0 filter must already be cheaper than LS, got {t0}");
    assert!(t50 < t0, "t=50 must be cheaper than t=0 ({t50} vs {t0})");
    assert!(t50 < 0.5, "t=50 should schedule almost nothing, got {t50}");
}

#[test]
fn fp_suite_gains_more_than_jvm98() {
    // Paper §4.5: the FP suite is where scheduling matters most.
    let e = harness();
    let jvm = e.fig2();
    let fp = e.fig3();
    let jgm = jvm.app_time.headers().len() - 1;
    let fgm = fp.app_time.headers().len() - 1;
    let jvm_ls: f64 = jvm.app_time.cell(0, jgm).parse().unwrap();
    let fp_ls: f64 = fp.app_time.cell(0, fgm).parse().unwrap();
    assert!(fp_ls < jvm_ls, "FP LS {fp_ls} should beat jvm98 LS {jvm_ls}");
}

#[test]
fn predicted_times_improve_under_every_threshold() {
    // Paper Table 4: "the model predicts improvements at all thresholds".
    let e = harness();
    let t4 = e.table4();
    let gm = t4.headers().len() - 1;
    for row in 0..THRESHOLDS.len() - 1 {
        let v: f64 = t4.cell(row, gm).parse().unwrap();
        assert!(v <= 100.0, "threshold row {row} predicts a slowdown: {v}");
    }
}

#[test]
fn runtime_ls_classification_shrinks_with_threshold() {
    // Paper Table 6: LS predictions fall from 6064 to 160 as t rises.
    let e = harness();
    let t6 = e.table6();
    let first: usize = t6.cell(1, 1).parse().unwrap();
    let last: usize = t6.cell(1, THRESHOLDS.len()).parse().unwrap();
    assert!(last < first, "LS predictions should shrink: {first} -> {last}");
}

#[test]
fn sample_filter_uses_block_size_and_category_features() {
    // Paper Figure 4: bbLen and the call/load/store/system fractions are
    // the load-bearing features.
    let e = harness();
    let fig4 = e.fig4();
    assert!(fig4.contains("list :-") || fig4.contains("(default)"));
    let mentions_core_feature =
        ["bbLen", "loads", "calls", "stores", "integers", "floats", "peis", "systems"].iter().any(|f| fig4.contains(f));
    assert!(mentions_core_feature, "induced rules should reference Table 1 features:\n{fig4}");
}

#[test]
fn suite_kinds_are_distinct() {
    let e = harness();
    // Smoke-check the SuiteKind plumbing used throughout.
    assert_ne!(format!("{:?}", SuiteKind::Jvm98), format!("{:?}", SuiteKind::Fp));
    drop(e);
}
