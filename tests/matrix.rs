//! Cross-machine experiment-matrix integration: the registry-wide sweep
//! produces per-machine rule sets and a transfer table, and its sharded
//! trace stage is bit-identical to running each machine serially.
//!
//! The `#[ignore]`d smoke test runs the sweep over a generated suite at
//! a realistic scale; CI runs it via `cargo test --test matrix -- --ignored`.

use schedfilter::prelude::*;

fn generated_programs(scale: f64) -> Vec<Program> {
    Suite::fp(scale).benchmarks().iter().map(|b| b.program().clone()).collect()
}

fn deterministic_matrix() -> ExperimentMatrix {
    ExperimentMatrix::over_registry()
        .with_template(Experiment::new(MachineConfig::ppc7410()).with_timing(TimingMode::Deterministic))
}

#[test]
fn registry_sweep_produces_per_machine_rule_sets_and_transfer_table() {
    let programs = generated_programs(0.01);
    let matrix = deterministic_matrix().run(&programs);

    let machines = registry();
    assert!(machines.len() >= 4, "acceptance: at least 4 registry machines");
    assert_eq!(matrix.machine_names().len(), machines.len());

    let filters = matrix.factory_filters(0);
    assert_eq!(filters.len(), machines.len(), "one induced rule set per machine");

    let transfer = matrix.transfer_errors(0);
    assert_eq!(transfer.len(), machines.len());
    for (i, row) in transfer.iter().enumerate() {
        assert_eq!(row.len(), machines.len());
        for (j, &e) in row.iter().enumerate() {
            assert!((0.0..=100.0).contains(&e), "transfer[{i}][{j}] = {e}% out of range");
        }
    }

    let sweep = matrix.ls_sweep(&[0, 20, 50]);
    for (name, counts) in &sweep {
        assert!(counts[0] >= counts[1] && counts[1] >= counts[2], "{name}: LS must shrink with t: {counts:?}");
    }
}

#[test]
fn sharded_matrix_matches_serial_per_machine_pipelines() {
    let programs = generated_programs(0.01);
    let sharded = deterministic_matrix().with_threads(8).run(&programs);
    for machine in registry() {
        let serial = Experiment::new(machine.clone())
            .with_threads(1)
            .with_timing(TimingMode::Deterministic)
            .run(programs.clone());
        assert_eq!(
            serial.all_traces(),
            sharded.run_for(machine.name()).all_traces(),
            "{}: sharded sweep must be bit-identical to the serial pipeline",
            machine.name()
        );
    }
}

/// The CI-enabled smoke test: a realistic-scale sweep, checking the
/// cross-machine signal the registry was built to expose — the slow
/// in-order embedded core leaves more schedulable blocks than the wide
/// out-of-order machine, and every machine induces a usable rule set.
#[test]
#[ignore = "matrix smoke test: realistic scale; CI runs it with -- --ignored"]
fn matrix_smoke_registry_sweep_at_scale() {
    let programs = generated_programs(0.05);
    let matrix = deterministic_matrix().run(&programs);

    let sweep = matrix.ls_sweep(&[0]);
    let ls_for = |name: &str| sweep.iter().find(|(n, _)| n == name).map(|(_, c)| c[0]).unwrap();
    assert!(
        ls_for("embedded") >= ls_for("wide4"),
        "embedded {} blocks benefit vs wide4 {}",
        ls_for("embedded"),
        ls_for("wide4")
    );

    let transfer = matrix.transfer_errors(0);
    for (i, (name, filter)) in matrix.factory_filters(0).into_iter().enumerate() {
        let run = matrix.run_for(&name);
        let own = transfer[i][i];
        assert!(own <= 50.0, "{name}: self-error {own}% means the rule set learned nothing");
        assert!(run.all_traces().len() > 100, "{name}: corpus too small to mean anything");
        let _ = filter.rules(); // every machine's rule set is printable
    }
}
