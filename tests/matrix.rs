//! Cross-machine experiment-matrix integration: the registry-wide sweep
//! produces per-machine rule sets and a transfer table, and its sharded
//! trace stage is bit-identical to running each machine serially.
//!
//! The `#[ignore]`d smoke test runs the sweep over a generated suite at
//! a realistic scale; CI runs it via `cargo test --test matrix -- --ignored`.

use schedfilter::prelude::*;

fn generated_programs(scale: f64) -> Vec<Program> {
    Suite::fp(scale).benchmarks().iter().map(|b| b.program().clone()).collect()
}

fn deterministic_matrix() -> ExperimentMatrix {
    ExperimentMatrix::over_registry()
        .with_template(Experiment::new(MachineConfig::ppc7410()).with_timing(TimingMode::Deterministic))
}

#[test]
fn registry_sweep_produces_per_machine_rule_sets_and_transfer_table() {
    let programs = generated_programs(0.01);
    let matrix = deterministic_matrix().run(&programs);

    let machines = registry();
    assert!(machines.len() >= 4, "acceptance: at least 4 registry machines");
    assert_eq!(matrix.machine_names().len(), machines.len());

    let filters = matrix.factory_filters(0);
    assert_eq!(filters.len(), machines.len(), "one induced rule set per machine");

    let transfer = matrix.transfer_errors(0);
    assert_eq!(transfer.len(), machines.len());
    for (i, row) in transfer.iter().enumerate() {
        assert_eq!(row.len(), machines.len());
        for (j, &e) in row.iter().enumerate() {
            assert!((0.0..=100.0).contains(&e), "transfer[{i}][{j}] = {e}% out of range");
        }
    }

    let sweep = matrix.ls_sweep(&[0, 20, 50]);
    for (name, counts) in &sweep {
        assert!(counts[0] >= counts[1] && counts[1] >= counts[2], "{name}: LS must shrink with t: {counts:?}");
    }
}

#[test]
fn sharded_matrix_matches_serial_per_machine_pipelines() {
    let programs = generated_programs(0.01);
    let sharded = deterministic_matrix().with_threads(8).run(&programs);
    for machine in registry() {
        let serial = Experiment::new(machine.clone())
            .with_threads(1)
            .with_timing(TimingMode::Deterministic)
            .run(programs.clone());
        assert_eq!(
            serial.all_traces(),
            sharded.run_for(machine.name()).all_traces(),
            "{}: sharded sweep must be bit-identical to the serial pipeline",
            machine.name()
        );
    }
}

/// The CI-enabled portfolio smoke test: at realistic scale, every
/// registry machine trains all three induction backends and the
/// portfolio-best selection rule holds — the pick's error is within the
/// tolerance of the machine's best error, and no eligible backend is
/// cheaper than it.
#[test]
#[ignore = "portfolio smoke test: realistic scale; CI runs it with -- --ignored"]
fn portfolio_smoke_every_backend_on_every_machine() {
    let tolerance = 2.0;
    let programs = generated_programs(0.05);
    let matrix = deterministic_matrix().run(&programs);
    let learners = LearnerKind::portfolio();
    assert!(learners.len() >= 3, "acceptance: at least 3 backends in the portfolio");

    let portfolio = matrix.portfolio(0, &learners, tolerance);
    assert_eq!(portfolio.len(), registry().len(), "one portfolio per registry machine");
    for mp in &portfolio {
        assert_eq!(mp.entries.len(), learners.len(), "{}: every backend reports", mp.machine);
        let best_error = mp.entries.iter().map(|e| e.error_percent).fold(f64::INFINITY, f64::min);
        let picked = mp.best_entry();
        assert!(
            picked.error_percent <= best_error + tolerance,
            "{}: best={} error {}% outside tolerance of {}%",
            mp.machine,
            picked.learner,
            picked.error_percent,
            best_error
        );
        for e in &mp.entries {
            assert!(
                (0.0..=100.0).contains(&e.error_percent),
                "{}/{}: error {}% out of range",
                mp.machine,
                e.learner,
                e.error_percent
            );
            if e.error_percent <= best_error + tolerance {
                assert!(
                    picked.overhead_work() <= e.overhead_work(),
                    "{}: picked {} (work {}) but eligible {} is cheaper (work {})",
                    mp.machine,
                    picked.learner,
                    picked.overhead_work(),
                    e.learner,
                    e.overhead_work()
                );
            }
        }
    }
}

/// The CI-enabled `repro superblock` smoke test: at realistic scale,
/// the registry-wide scope scenario holds — every machine's
/// superblock-scope pipeline merges real traces, trains scope-tagged
/// filters whose compiled form matches the interpreted one, and the
/// scope table the artifact prints has sane cells on every row.
#[test]
#[ignore = "superblock smoke test: realistic scale; CI runs it with -- --ignored"]
fn superblock_smoke_scope_scenario_on_every_machine() {
    let programs = generated_programs(0.05);
    let block = deterministic_matrix().run(&programs);
    let superblock = deterministic_matrix().with_scope(ScopeKind::Superblock(70)).run(&programs);
    assert_eq!(superblock.scope(), ScopeKind::Superblock(70));

    for machine in registry() {
        let b = block.run_for(machine.name());
        let s = superblock.run_for(machine.name());
        assert!(
            s.all_traces().len() < b.all_traces().len(),
            "{}: superblock scope must decide over coarser units",
            machine.name()
        );
        assert!(
            s.all_traces().iter().any(|r| r.features.get(FeatureKind::TraceWidth) > 1.0),
            "{}: the corpus must contain merged traces",
            machine.name()
        );
        for (bench, filter) in s.loocv_filters(0).iter() {
            assert_eq!(filter.learner(), "L/N@sb70", "{}: scope tag missing", machine.name());
            let compiled = filter.compile();
            for r in s.all_traces() {
                assert_eq!(
                    compiled.decide(r.features.as_slice()),
                    filter.should_schedule(&r.features),
                    "{}/{bench}: compiled ≡ interpreted must hold at superblock scope",
                    machine.name()
                );
            }
        }
        // The honest accounting stays sane at trace scope: the filters
        // beat always-scheduling on work and the error is a percentage.
        let eval = s.learner_eval(0, &LearnerKind::default());
        assert!((0.0..=100.0).contains(&eval.error_percent), "{}: {}", machine.name(), eval.error_percent);
        assert!(eval.times.work_ratio() < 1.0, "{}: ratio {}", machine.name(), eval.times.work_ratio());
        // And the paper's headline: speculative trace scheduling adds a
        // small extra gain over local scheduling on this machine.
        let mut gain = wts_jit::SuperblockGain::default();
        for p in &programs {
            gain.accumulate(&wts_jit::superblock_gain(p, &machine, 70));
        }
        assert!(gain.merged_traces > 0, "{}: no merged traces", machine.name());
        let extra = gain.extra_improvement();
        assert!((0.0..0.25).contains(&extra), "{}: extra gain {extra} implausible", machine.name());
    }
}

/// The CI-enabled calibration smoke test: at realistic scale, the
/// decision-policy layer holds its acceptance bar on the full registry —
/// the hard policy and the LOOCV-calibrated expected-benefit policy are
/// both bracketed by the per-unit oracle, and cost-sensitive decisions
/// reach or beat the fixed-threshold baseline's expected net cycles on
/// at least one machine.
#[test]
#[ignore = "calibration smoke test: realistic scale; CI runs it with -- --ignored"]
fn calibration_smoke_policies_bracketed_by_the_oracle_on_every_machine() {
    let c = 1.0;
    let programs = generated_programs(0.05);
    let matrix = deterministic_matrix().run(&programs);
    let rows = matrix.calibration(0, c);
    assert_eq!(rows.len(), registry().len(), "one calibration row per registry machine");
    let mut eb_wins = 0usize;
    for row in &rows {
        assert!(row.model.saved_per_inst > 0.0, "{}: scheduling never helps?", row.machine);
        assert_eq!(row.oracle.filter_work + row.oracle.feature_work, 0, "{}: the oracle runs no filter", row.machine);
        let bound = row.oracle.net_cycles(c);
        assert!(bound > 0.0, "{}: even the oracle nets nothing", row.machine);
        assert!(row.baseline.net_cycles(c) <= bound + 1e-9, "{}: hard policy beats the oracle", row.machine);
        assert!(row.expected_benefit.net_cycles(c) <= bound + 1e-9, "{}: eb policy beats the oracle", row.machine);
        assert!(
            row.baseline.scheduled_blocks > 0 && row.expected_benefit.scheduled_blocks > 0,
            "{}: both policies must schedule something",
            row.machine
        );
        if row.expected_benefit.net_cycles(c) >= row.baseline.net_cycles(c) {
            eb_wins += 1;
        }
    }
    assert!(eb_wins >= 1, "expected-benefit must reach the fixed-threshold baseline on at least one machine");
}

/// The CI-enabled `repro verify` smoke test: at realistic scale, the
/// independent static checker (dependence oracle, timing re-simulation,
/// speculation safety) reports zero diagnostics over the generated
/// corpus on every registry machine × scheduling policy × scope — the
/// standing invariant every future pipeline change inherits.
#[test]
#[ignore = "verify smoke test: realistic scale; CI runs it with -- --ignored"]
fn verify_smoke_zero_diagnostics_at_scale() {
    use schedfilter::verify::render;
    let programs = generated_programs(0.05);
    let policies = [
        SchedulePolicy::CriticalPath,
        SchedulePolicy::EarliestStart,
        SchedulePolicy::CriticalPathOnly,
        SchedulePolicy::Random(0x5EED),
    ];
    for machine in registry() {
        for policy in policies {
            for scope in [ScopeKind::Block, ScopeKind::Superblock(70)] {
                let mut units = 0;
                let mut changed = 0;
                for program in &programs {
                    let report = verify_program(program, &machine, policy, scope);
                    units += report.units;
                    changed += report.changed;
                    assert!(
                        report.is_clean(),
                        "{} {policy} {scope} {}:\n{}",
                        machine.name(),
                        program.name(),
                        render(&report.diagnostics)
                    );
                }
                assert!(units > 100, "{}: corpus too small to mean anything", machine.name());
                assert!(changed > 0, "{} {policy} {scope}: the sweep never saw a changed schedule", machine.name());
            }
        }
    }
}

/// The CI-enabled matrix smoke test: a realistic-scale sweep, checking
/// the cross-machine signal the registry was built to expose — the slow
/// in-order embedded core leaves more schedulable blocks than the wide
/// out-of-order machine, and every machine induces a usable rule set.
#[test]
#[ignore = "matrix smoke test: realistic scale; CI runs it with -- --ignored"]
fn matrix_smoke_registry_sweep_at_scale() {
    let programs = generated_programs(0.05);
    let matrix = deterministic_matrix().run(&programs);

    let sweep = matrix.ls_sweep(&[0]);
    let ls_for = |name: &str| sweep.iter().find(|(n, _)| n == name).map(|(_, c)| c[0]).unwrap();
    assert!(
        ls_for("embedded") >= ls_for("wide4"),
        "embedded {} blocks benefit vs wide4 {}",
        ls_for("embedded"),
        ls_for("wide4")
    );

    let transfer = matrix.transfer_errors(0);
    for (i, (name, filter)) in matrix.factory_filters(0).into_iter().enumerate() {
        let run = matrix.run_for(&name);
        let own = transfer[i][i];
        assert!(own <= 50.0, "{name}: self-error {own}% means the rule set learned nothing");
        assert!(run.all_traces().len() > 100, "{name}: corpus too small to mean anything");
        let _ = filter.rules(); // every machine's rule set is printable
    }
}
