//! The standing wts-verify invariant future PRs inherit: the untampered
//! pipeline draws **zero diagnostics** from the independent checker on
//! every registry machine × scheduling policy × scope, over generated
//! corpora.
//!
//! The `#[ignore]`d smoke test in `tests/matrix.rs` runs the same sweep
//! at realistic scale in CI; `tests/verify.rs` keeps a quick version in
//! the always-on tier. Build with `--features verify` to additionally
//! exercise the debug-assert hooks inside trace collection, the filtered
//! deployment pass and the JIT compile session (the `hooks_*` test).

use schedfilter::prelude::*;
use schedfilter::verify::render;

fn generated_programs(scale: f64) -> Vec<Program> {
    Suite::fp(scale).benchmarks().iter().map(|b| b.program().clone()).collect()
}

fn sweep_policies() -> [SchedulePolicy; 4] {
    [
        SchedulePolicy::CriticalPath,
        SchedulePolicy::EarliestStart,
        SchedulePolicy::CriticalPathOnly,
        SchedulePolicy::Random(0x5EED),
    ]
}

#[test]
fn pipeline_draws_zero_diagnostics_on_every_machine_policy_and_scope() {
    let programs = generated_programs(0.01);
    for machine in registry() {
        for policy in sweep_policies() {
            for scope in [ScopeKind::Block, ScopeKind::Superblock(70)] {
                let mut units = 0;
                for program in &programs {
                    let report = verify_program(program, &machine, policy, scope);
                    units += report.units;
                    assert!(
                        report.is_clean(),
                        "{} {policy} {scope} {}: {} diagnostics:\n{}",
                        machine.name(),
                        program.name(),
                        report.diagnostics.len(),
                        render(&report.diagnostics)
                    );
                }
                assert!(units > 0, "{}: sweep examined no units", machine.name());
            }
        }
    }
}

/// Degenerate scheduling units — empty and single-instruction blocks and
/// the scheduler's revert-to-identity path — must verify cleanly too:
/// these are exactly the paths a naive checker would misjudge.
#[test]
fn degenerate_units_verify_cleanly() {
    let machine = MachineConfig::ppc7410();
    let scheduler = ListScheduler::new(&machine);

    let empty: Vec<Inst> = Vec::new();
    let outcome = scheduler.schedule_insts(&empty);
    assert!(verify_unit(&machine, &empty, false, &outcome).is_empty());

    let single = vec![Inst::new(Opcode::Add).def(Reg::gpr(1)).use_(Reg::gpr(2)).use_(Reg::gpr(3))];
    let outcome = scheduler.schedule_insts(&single);
    assert!(verify_unit(&machine, &single, false, &outcome).is_empty());
}

/// With `--features verify` the hooks themselves run: trace collection,
/// the filtered deployment pass and the JIT compile session each verify
/// every unit they schedule and panic on the first diagnostic. The test
/// simply drives all three paths over a generated corpus.
#[cfg(feature = "verify")]
#[test]
fn hooks_fire_cleanly_across_the_whole_pipeline() {
    let programs = generated_programs(0.01);
    let machine = MachineConfig::ppc7410();

    // Trace collection (block and superblock scope).
    let run = Experiment::new(machine.clone()).with_timing(TimingMode::Deterministic).run(programs.clone());
    assert!(run.all_traces().len() > 10);
    let sb = Experiment::new(machine.clone())
        .with_timing(TimingMode::Deterministic)
        .with_scope(ScopeKind::Superblock(70))
        .run(programs.clone());
    assert!(!sb.all_traces().is_empty());

    // The JIT compile session (drives filtered_schedule_pass-style
    // decisions through CompileSession::compile).
    let filter = SizeThresholdFilter::new(1);
    let session = CompileSession::new(&machine);
    for program in &programs {
        let (compiled, stats) = session.compile(program, &filter);
        assert_eq!(compiled.block_count(), program.block_count());
        assert!(stats.scheduled_blocks > 0);
    }
}
