//! Integration bar for the serving layer: the server is the deployed
//! pass behind a socket — bit-identical totals, lossless drains, and
//! hot swaps that never split a batch across epochs.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use wts_core::{
    collect_trace_with, filtered_schedule_pass_with, train_filter, DecisionPolicy, LearnerKind, ScopeKind, TimingMode,
    TraceOptions, TraceRecord,
};
use wts_ir::Program;
use wts_machine::MachineConfig;
use wts_serve::{BatchResult, Response, ServeClient, ServeConfig, Server, ServerHandle};

fn options() -> TraceOptions {
    TraceOptions { timing: TimingMode::Deterministic, ..TraceOptions::default() }
}

fn corpus(programs: &[Program], machine: &MachineConfig, opts: &TraceOptions) -> Vec<TraceRecord> {
    programs.iter().flat_map(|p| collect_trace_with(p, machine, opts)).collect()
}

/// A stump-learner config over the given corpus: retraining is
/// microseconds, so tests control cadence, not training cost.
fn stump_config(machine: &MachineConfig, seed: Vec<TraceRecord>, retrain_every: usize) -> ServeConfig {
    let mut config = ServeConfig::new(machine.clone(), seed);
    config.learner = LearnerKind::Stump;
    config.retrain_every = retrain_every;
    config
}

fn expect_batch(resp: Response) -> BatchResult {
    match resp {
        Response::Batch(batch) => batch,
        other => panic!("expected a batch result, got {other:?}"),
    }
}

#[test]
fn server_schedules_bit_identical_to_direct_pass() {
    let machine = MachineConfig::ppc7410();
    let programs = wts_core::testutil::learnable_suite(3);
    for scope in [ScopeKind::Block, ScopeKind::Superblock(70)] {
        let opts = TraceOptions { scope, ..options() };
        let mut config = stump_config(&machine, corpus(&programs, &machine, &opts), 0);
        config.options = opts;
        let handle = Server::bind("127.0.0.1:0", config).expect("bind");
        let snapshot = handle.store().get(handle.key()).expect("seed filter deployed");

        let mut client = ServeClient::connect(handle.local_addr()).expect("connect");
        for (i, program) in programs.iter().enumerate() {
            let batch = expect_batch(client.request(i as u64, program.name(), program.methods()).expect("request"));
            let direct = filtered_schedule_pass_with(
                program,
                &machine,
                snapshot.compiled(),
                &DecisionPolicy::HardThreshold,
                &opts,
            );
            assert_eq!(batch.epoch, snapshot.epoch());
            assert_eq!(
                (batch.totals.total_blocks, batch.totals.scheduled_blocks, batch.totals.conditions_evaluated),
                (direct.total_blocks, direct.scheduled_blocks, direct.conditions_evaluated),
                "{}/{scope:?}",
                program.name()
            );
            assert_eq!(
                (batch.totals.extraction_work, batch.totals.sched_work),
                (direct.extraction_work, direct.sched_work),
                "{}/{scope:?}",
                program.name()
            );
            assert_eq!(batch.units.len(), direct.total_blocks, "one served unit per scope unit");
            assert_eq!(batch.units.iter().filter(|u| u.decision).count(), direct.scheduled_blocks);
            for unit in batch.units.iter().filter(|u| u.decision) {
                let mut order = unit.order.clone();
                order.sort_unstable();
                assert_eq!(order, (0..unit.order.len() as u32).collect::<Vec<_>>(), "a permutation came back");
                assert!(unit.cycles_after <= unit.cycles_before);
            }
        }
        let report = handle.shutdown();
        assert_eq!(report.stats.batches_served, programs.len() as u64);
        assert_eq!(report.retrain.retrains, 0, "retraining was disabled");
    }
}

#[test]
fn graceful_shutdown_loses_no_trace_records() {
    let machine = MachineConfig::ppc7410();
    let programs = wts_core::testutil::learnable_suite(3);
    let opts = options();
    let seed = corpus(&programs, &machine, &opts);
    let handle = Server::bind("127.0.0.1:0", stump_config(&machine, seed, 40)).expect("bind");

    let clients = 3usize;
    let served: u64 = std::thread::scope(|s| {
        let addr = handle.local_addr();
        let programs = &programs;
        (0..clients)
            .map(|c| {
                s.spawn(move || {
                    let mut client = ServeClient::connect(addr).expect("connect");
                    let mut units = 0u64;
                    for (i, program) in programs.iter().enumerate() {
                        let id = (c * programs.len() + i) as u64;
                        let batch = expect_batch(
                            client.request_with_retry(id, program.name(), program.methods(), 10).expect("request"),
                        );
                        assert_eq!(batch.batch_id, id);
                        units += batch.totals.total_blocks as u64;
                    }
                    units
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().expect("client panicked"))
            .sum()
    });

    let report = handle.shutdown();
    let expected: u64 = programs.iter().map(|p| p.block_count() as u64).sum::<u64>() * clients as u64;
    // Nothing lost: every unit the clients saw served was absorbed by
    // the retrainer. Nothing double-counted: the absorbed total is
    // exactly the block population, not a multiple of it.
    assert_eq!(served, expected, "clients saw every unit");
    assert_eq!(report.stats.units_served, expected);
    assert_eq!(report.retrain.records_absorbed, expected, "drain absorbed exactly the served units");
    assert_eq!(report.stats.batches_served, (clients * programs.len()) as u64);
    assert!(report.retrain.retrains >= 1, "the cadence fired under this load");
    assert_eq!(report.retrain.last_epoch, 1 + report.retrain.retrains, "every fold advanced the epoch once");
}

#[test]
fn hot_swap_under_load_answers_every_batch_from_one_epoch() {
    let machine = MachineConfig::ppc7410();
    let programs = wts_core::testutil::learnable_suite(3);
    let opts = options();
    let seed = corpus(&programs, &machine, &opts);
    let swap_filter = train_filter(&seed, &wts_core::TrainConfig::with_learner(10, LearnerKind::Stump));
    let handle = Server::bind("127.0.0.1:0", stump_config(&machine, seed, 25)).expect("bind");

    let stop = Arc::new(AtomicBool::new(false));
    let epochs: Vec<u64> = std::thread::scope(|s| {
        // A deployer thread hammers explicit swaps while the retrainer
        // also swaps on its own cadence.
        let deployer = {
            let store = Arc::clone(handle.store());
            let key = handle.key().clone();
            let stop = Arc::clone(&stop);
            s.spawn(move || {
                while !stop.load(Ordering::Acquire) {
                    store.swap(key.clone(), swap_filter.clone());
                    std::thread::yield_now();
                }
            })
        };
        let addr = handle.local_addr();
        let programs = &programs;
        let observed: Vec<u64> = (0..3usize)
            .map(|c| {
                s.spawn(move || {
                    let mut client = ServeClient::connect(addr).expect("connect");
                    let mut epochs = Vec::new();
                    for round in 0..5usize {
                        for (i, program) in programs.iter().enumerate() {
                            let id = (c * 1000 + round * 10 + i) as u64;
                            let batch = expect_batch(
                                client.request_with_retry(id, program.name(), program.methods(), 10).expect("request"),
                            );
                            // Never a partial batch: the whole program
                            // was served, by exactly one epoch.
                            assert_eq!(batch.totals.total_blocks, program.block_count());
                            assert_eq!(batch.units.len(), program.block_count());
                            epochs.push(batch.epoch);
                        }
                    }
                    epochs
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .flat_map(|h| h.join().expect("client panicked"))
            .collect();
        stop.store(true, Ordering::Release);
        deployer.join().expect("deployer panicked");
        observed
    });

    let final_epoch = handle.epoch();
    let report = handle.shutdown();
    assert_eq!(epochs.len(), 3 * 5 * programs.len());
    let distinct: std::collections::BTreeSet<u64> = epochs.iter().copied().collect();
    assert!(distinct.len() >= 2, "swaps landed while serving: {distinct:?}");
    assert!(epochs.iter().all(|&e| e >= 1 && e <= final_epoch), "every epoch is a published one");
    // The retrainer's final fold may bump past what clients observed,
    // but the drain still accounts for every record.
    assert_eq!(report.retrain.records_absorbed, report.stats.units_served);
}

/// The full loop at realistic scale: a specjvm98-sized corpus served by
/// a worker fleet under concurrent clients with online retraining. With
/// `--features verify` (debug builds) every schedule the workers emit
/// is also checked by wts-verify inside the serving fast path.
#[test]
#[ignore = "serve smoke test: realistic scale; CI runs it with -- --ignored"]
fn serve_smoke_realistic_scale() {
    let machine = MachineConfig::ppc7410();
    let suite = wts_jit::Suite::specjvm98(0.25);
    let programs: Vec<Program> = suite.benchmarks().iter().map(|b| b.program().clone()).collect();
    let opts = options();
    let seed = corpus(&programs, &machine, &opts);
    assert!(seed.len() > 1000, "realistic scale means a real corpus, got {}", seed.len());
    let mut config = stump_config(&machine, seed, 2000);
    config.workers = 4;
    let handle = Server::bind("127.0.0.1:0", config).expect("bind");

    let served: u64 = std::thread::scope(|s| {
        let addr = handle.local_addr();
        let programs = &programs;
        (0..4usize)
            .map(|c| {
                s.spawn(move || {
                    let mut client = ServeClient::connect(addr).expect("connect");
                    let mut units = 0u64;
                    for round in 0..2usize {
                        for (i, program) in programs.iter().enumerate() {
                            let id = (c * 1000 + round * 100 + i) as u64;
                            let batch = expect_batch(
                                client.request_with_retry(id, program.name(), program.methods(), 12).expect("request"),
                            );
                            assert_eq!(batch.totals.total_blocks, program.block_count());
                            units += batch.totals.total_blocks as u64;
                        }
                    }
                    units
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().expect("client panicked"))
            .sum()
    });

    let report = handle.shutdown();
    assert_eq!(report.stats.units_served, served);
    assert_eq!(report.retrain.records_absorbed, served, "lossless at scale");
    assert!(report.retrain.retrains >= 1, "the corpus is large enough to trigger folds");
    assert_eq!(report.stats.protocol_errors, 0);
}

/// Graceful shutdown persists the retrainer's full corpus to the
/// `schedfilter-trace-bin-v1` format, and it round-trips: the file
/// reads back as exactly seed + absorbed records, ready to seed a
/// restarted instance.
#[test]
fn shutdown_persists_the_retrain_corpus_round_trip() {
    let machine = MachineConfig::ppc7410();
    let programs = wts_core::testutil::learnable_suite(2);
    let opts = options();
    let seed = corpus(&programs, &machine, &opts);
    let path = std::env::temp_dir().join(format!("wts-serve-corpus-{}.bin", std::process::id()));
    let mut config = stump_config(&machine, seed.clone(), 40);
    config.persist_corpus = Some(path.clone());
    let handle = Server::bind("127.0.0.1:0", config).expect("bind");

    let mut client = ServeClient::connect(handle.local_addr()).expect("connect");
    for (i, program) in programs.iter().enumerate() {
        expect_batch(client.request_with_retry(i as u64, program.name(), program.methods(), 10).expect("request"));
    }
    drop(client);
    let report = handle.shutdown();

    let expected = seed.len() as u64 + report.retrain.records_absorbed;
    assert!(report.retrain.records_absorbed > 0, "the served batches were observed");
    assert_eq!(report.retrain.records_persisted, expected, "seed + absorbed records persisted");
    let bytes = std::fs::read(&path).expect("persisted corpus exists");
    std::fs::remove_file(&path).ok();
    let records = wts_core::read_trace_auto(&bytes).expect("round-trips through schedfilter-trace-bin-v1");
    assert_eq!(records.len() as u64, expected);
    assert_eq!(&records[..seed.len()], &seed[..], "the seed prefix survives bit-exactly");
    // The persisted corpus is a working seed: a restarted instance
    // trains its epoch-1 filter from it directly.
    let restarted = Server::bind("127.0.0.1:0", stump_config(&machine, records, 0)).expect("rebind from corpus");
    assert_eq!(restarted.epoch(), 1);
    restarted.shutdown();
}

/// `ServerHandle` is self-describing enough to monitor externally.
#[test]
fn handle_reports_address_key_and_stats() {
    let machine = MachineConfig::ppc7410();
    let programs = wts_core::testutil::learnable_suite(2);
    let opts = options();
    let handle: ServerHandle =
        Server::bind("127.0.0.1:0", stump_config(&machine, corpus(&programs, &machine, &opts), 0)).expect("bind");
    assert_ne!(handle.local_addr().port(), 0, "the OS assigned a real port");
    assert_eq!(handle.key().machine(), "ppc7410");
    assert_eq!(handle.key().threshold(), 0);
    assert_eq!(handle.epoch(), 1, "the seed filter is live");
    let stats = handle.stats();
    assert_eq!((stats.connections, stats.batches_served), (0, 0));
    // Empty seeds are rejected up front, not at first request.
    let err = Server::bind("127.0.0.1:0", stump_config(&machine, Vec::new(), 0)).expect_err("empty seed");
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
    handle.shutdown();
}
