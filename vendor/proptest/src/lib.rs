//! A minimal, dependency-free property-testing shim exposing the subset
//! of the `proptest` API this workspace uses.
//!
//! The container building this repository has no access to crates.io, so
//! the real `proptest` cannot be fetched. This shim keeps the workspace's
//! property tests compiling and running offline:
//!
//! * [`proptest!`] — the test-harness macro (`#![proptest_config(..)]`,
//!   `#[test] fn name(pat in strategy, ..) { .. }`);
//! * [`strategy::Strategy`] with `prop_map`, numeric range strategies,
//!   tuple strategies, `prop::collection::vec`, `prop::sample::select`,
//!   `prop::bool::ANY` and `prop::option::of`;
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assume!`].
//!
//! Differences from the real crate: generation is a fixed-seed
//! deterministic PRNG (seeded from the test name, so every run and every
//! machine explores the same cases), there is **no shrinking** — a failing
//! case reports its inputs via the panic message of the assertion that
//! tripped — and `prop_assume!` skips the case instead of re-sampling.

// The shim mirrors the external crate's API and PRNG tricks; it is not
// held to the workspace's opt-in cast lints (see the CI clippy job).
#![allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]

pub mod test_runner {
    /// Configuration for a property test run.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` generated inputs.
        pub fn with_cases(cases: u32) -> Config {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Config {
            Config { cases: 256 }
        }
    }

    /// Error raised by a failing or vetoed test case.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs; the case is skipped.
        Reject(String),
        /// `prop_assert!`/`prop_assert_eq!` failed.
        Fail(String),
    }

    /// Result type the generated test-case closures return.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Deterministic splitmix64 generator: fixed seeds make property runs
    /// reproducible across machines, which the workspace's determinism
    /// guarantees rely on.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A generator seeded from an arbitrary byte string (the test name).
        pub fn from_name(name: &str) -> TestRng {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { state: h | 1 }
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, n)`; `n` must be nonzero.
        pub fn below(&mut self, n: u64) -> u64 {
            self.next_u64() % n
        }

        /// Uniform float in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A generator of values of type `Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// The [`Strategy::prop_map`] combinator.
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_ranges {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start + rng.below(span) as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                    if span == 0 {
                        // Full-width inclusive range.
                        return rng.next_u64() as $t;
                    }
                    lo + rng.below(span) as $t
                }
            }
        )*};
    }

    int_ranges!(u8, u16, u32, u64, usize);

    impl Strategy for Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($n:ident $idx:tt),+);)*) => {$(
            impl<$($n: Strategy),+> Strategy for ($($n,)+) {
                type Value = ($($n::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A 0);
        (A 0, B 1);
        (A 0, B 1, C 2);
        (A 0, B 1, C 2, D 3);
        (A 0, B 1, C 2, D 3, E 4);
        (A 0, B 1, C 2, D 3, E 4, F 5);
        (A 0, B 1, C 2, D 3, E 4, F 5, G 6);
        (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7);
    }

    /// Generates every top-level argument of a `proptest!` test case.
    pub fn generate_all<S: Strategy>(strategies: &S, rng: &mut TestRng) -> S::Value {
        strategies.generate(rng)
    }
}

/// Strategy constructors, mirroring the real crate's `prop` module tree.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        use std::ops::Range;

        /// A strategy for `Vec`s with lengths drawn from `size`.
        pub struct VecStrategy<S> {
            element: S,
            size: Range<usize>,
        }

        /// `vec(element, len_range)`: vectors of `element` values.
        pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, size }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let span = (self.size.end - self.size.start).max(1) as u64;
                let len = self.size.start + rng.below(span) as usize;
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }
    }

    /// Sampling strategies.
    pub mod sample {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;

        /// A strategy drawing uniformly from a fixed list.
        pub struct Select<T: Clone>(Vec<T>);

        /// `select(choices)`: one of the given values, uniformly.
        pub fn select<T: Clone>(choices: Vec<T>) -> Select<T> {
            assert!(!choices.is_empty(), "select requires at least one choice");
            Select(choices)
        }

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;

            fn generate(&self, rng: &mut TestRng) -> T {
                self.0[rng.below(self.0.len() as u64) as usize].clone()
            }
        }
    }

    /// Boolean strategies.
    pub mod bool {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;

        /// A fair coin.
        #[derive(Debug, Clone, Copy)]
        pub struct Any;

        /// The fair-coin strategy.
        pub const ANY: Any = Any;

        impl Strategy for Any {
            type Value = bool;

            fn generate(&self, rng: &mut TestRng) -> bool {
                rng.next_u64() & 1 == 1
            }
        }
    }

    /// `Option` strategies.
    pub mod option {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;

        /// A strategy for `Option<S::Value>` (three in four are `Some`).
        pub struct OptionStrategy<S>(S);

        /// `of(inner)`: `None` a quarter of the time, else `Some`.
        pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
            OptionStrategy(inner)
        }

        impl<S: Strategy> Strategy for OptionStrategy<S> {
            type Value = Option<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
                if rng.below(4) == 0 {
                    None
                } else {
                    Some(self.0.generate(rng))
                }
            }
        }
    }
}

/// Everything a property test needs, in one import.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(format!($($fmt)*)));
        }
    };
}

/// Fails the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("{} ({:?} != {:?})", format!($($fmt)*), l, r),
            ));
        }
    }};
}

/// Skips the current case unless `cond` holds (no re-sampling in this shim).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                concat!("assumption failed: ", stringify!($cond)).to_string(),
            ));
        }
    };
}

/// The property-test harness macro. Accepts an optional leading
/// `#![proptest_config(..)]` followed by `#[test]` functions whose
/// arguments are `pattern in strategy` pairs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { @config ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { @config ($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@config ($cfg:expr) $(
        $(#[$meta:meta])+
        fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])+
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            let mut rng = $crate::test_runner::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
            let strategies = ( $( $strat, )+ );
            for case in 0..config.cases {
                let result: $crate::test_runner::TestCaseResult = (|| {
                    let ( $($pat,)+ ) = $crate::strategy::generate_all(&strategies, &mut rng);
                    $body
                    ::core::result::Result::Ok(())
                })();
                match result {
                    ::core::result::Result::Ok(()) => {}
                    ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!("property '{}' failed at case {case}: {msg}", stringify!($name));
                    }
                }
            }
        }
    )*};
}
