//! A minimal, dependency-free benchmark harness exposing the subset of
//! the `criterion` API this workspace uses.
//!
//! The container building this repository has no access to crates.io, so
//! the real `criterion` cannot be fetched. This shim keeps `cargo bench`
//! working offline: it honors `sample_size`, `warm_up_time` and
//! `measurement_time` loosely, times each sample with [`std::time::Instant`],
//! and prints a `name  time: [min mean max]` line per benchmark. There is
//! no statistical analysis, plotting or baseline comparison.
//!
//! Two environment variables extend the real crate's surface for CI use:
//!
//! * `CRITERION_SAMPLES=<n>` caps every benchmark at `n` samples and
//!   shrinks the warm-up/measurement budgets, for quick smoke runs.
//! * `CRITERION_SUMMARY_JSON=<path>` appends one JSON object per
//!   benchmark (`{"name":…,"min_ns":…,"mean_ns":…,"max_ns":…,"samples":…}`)
//!   to `path`, so wrapper scripts can collect machine-readable results
//!   without scraping stdout.

use std::fmt;
use std::io::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifies one benchmark within a group: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// An id rendered as `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId { name: format!("{}/{}", function_name.into(), parameter) }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)
    }
}

/// Conversion into a printable benchmark name (sealed in the real crate).
pub trait IntoBenchName {
    fn into_bench_name(self) -> String;
}

impl IntoBenchName for BenchmarkId {
    fn into_bench_name(self) -> String {
        self.name
    }
}

impl IntoBenchName for &str {
    fn into_bench_name(self) -> String {
        self.to_string()
    }
}

impl IntoBenchName for String {
    fn into_bench_name(self) -> String {
        self
    }
}

/// Passed to the benchmark closure; its [`iter`](Bencher::iter) method
/// runs and times the measured routine.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Bencher {
    /// Times `routine` over the configured number of samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run until the warm-up budget is spent (at least once).
        let warm_start = Instant::now();
        loop {
            black_box(routine());
            if warm_start.elapsed() >= self.warm_up_time {
                break;
            }
        }
        // Measurement: `sample_size` samples of one invocation each,
        // stopping early only if far past the measurement budget.
        let measure_start = Instant::now();
        for i in 0..self.sample_size {
            let t0 = Instant::now();
            black_box(routine());
            self.samples.push(t0.elapsed());
            if i >= 9 && measure_start.elapsed() >= self.measurement_time.saturating_mul(4) {
                break;
            }
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the warm-up budget per benchmark.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Sets the measurement budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    fn bencher(&self) -> Bencher {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
        };
        apply_env_caps(&mut b.sample_size, &mut b.warm_up_time, &mut b.measurement_time);
        b
    }

    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl IntoBenchName, mut f: F) -> &mut Self {
        let mut b = self.bencher();
        f(&mut b);
        self.report(id.into_bench_name(), &b.samples);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl IntoBenchName,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = self.bencher();
        f(&mut b, input);
        self.report(id.into_bench_name(), &b.samples);
        self
    }

    fn report(&mut self, id: String, samples: &[Duration]) {
        let name = format!("{}/{}", self.name, id);
        let line = summarize(&name, samples);
        println!("{line}");
        append_summary_json(&name, samples);
        self.criterion.lines.push(line);
    }

    /// Ends the group (kept for API compatibility; reporting is eager).
    pub fn finish(&mut self) {}
}

fn summarize(name: &str, samples: &[Duration]) -> String {
    if samples.is_empty() {
        return format!("{name:<60} time: [no samples]");
    }
    let min = samples.iter().min().unwrap();
    let max = samples.iter().max().unwrap();
    let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
    format!(
        "{name:<60} time: [{} {} {}]  ({} samples)",
        fmt_duration(*min),
        fmt_duration(mean),
        fmt_duration(*max),
        samples.len(),
    )
}

/// Sample-count cap from `CRITERION_SAMPLES`, if set and parseable.
fn sample_cap() -> Option<usize> {
    std::env::var("CRITERION_SAMPLES").ok()?.parse::<usize>().ok().map(|n| n.max(1))
}

/// Applies the `CRITERION_SAMPLES` quick-run cap to a bench's settings:
/// the sample count is capped and the time budgets shrunk so a CI smoke
/// pass finishes in seconds rather than minutes.
fn apply_env_caps(sample_size: &mut usize, warm_up: &mut Duration, measurement: &mut Duration) {
    if let Some(cap) = sample_cap() {
        *sample_size = (*sample_size).min(cap);
        *warm_up = (*warm_up).min(Duration::from_millis(200));
        *measurement = (*measurement).min(Duration::from_millis(500));
    }
}

/// Appends one JSON result line to `$CRITERION_SUMMARY_JSON`, if set.
/// Failures to open or write the file are reported on stderr but never
/// fail the bench run.
fn append_summary_json(name: &str, samples: &[Duration]) {
    let Ok(path) = std::env::var("CRITERION_SUMMARY_JSON") else { return };
    if path.is_empty() || samples.is_empty() {
        return;
    }
    let min = samples.iter().min().unwrap().as_nanos();
    let max = samples.iter().max().unwrap().as_nanos();
    let mean = samples.iter().map(Duration::as_nanos).sum::<u128>() / samples.len() as u128;
    let escaped: String = name
        .chars()
        .flat_map(|c| match c {
            '"' | '\\' => vec!['\\', c],
            c if (c as u32) < 0x20 => vec![' '],
            c => vec![c],
        })
        .collect();
    let record = format!(
        "{{\"name\":\"{escaped}\",\"min_ns\":{min},\"mean_ns\":{mean},\"max_ns\":{max},\"samples\":{}}}\n",
        samples.len(),
    );
    let written = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .and_then(|mut f| f.write_all(record.as_bytes()));
    if let Err(e) = written {
        eprintln!("criterion shim: cannot append summary to {path}: {e}");
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// The harness entry point handed to each benchmark function.
#[derive(Default)]
pub struct Criterion {
    lines: Vec<String>,
}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 100,
            warm_up_time: Duration::from_secs(3),
            measurement_time: Duration::from_secs(5),
        }
    }

    /// Runs one ungrouped benchmark with default settings.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: 100,
            warm_up_time: Duration::from_secs(3),
            measurement_time: Duration::from_secs(5),
        };
        apply_env_caps(&mut b.sample_size, &mut b.warm_up_time, &mut b.measurement_time);
        f(&mut b);
        println!("{}", summarize(name, &b.samples));
        append_summary_json(name, &b.samples);
        self
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main`, running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
