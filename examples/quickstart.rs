//! Quickstart: build a block, schedule it, extract features, and ask a
//! filter whether scheduling was worth it.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use schedfilter::prelude::*;

fn main() {
    // A block with classic load-use stalls and independent filler: the
    // kind of block the paper's filters learn to send to the scheduler.
    let mut block = BasicBlock::new(0);
    block.push(Inst::new(Opcode::Lwz).def(Reg::gpr(10)).use_(Reg::gpr(3)).mem(MemRef::slot(MemSpace::Heap, 0)));
    block.push(Inst::new(Opcode::Add).def(Reg::gpr(11)).use_(Reg::gpr(10)).use_(Reg::gpr(10)));
    block.push(Inst::new(Opcode::Lwz).def(Reg::gpr(12)).use_(Reg::gpr(3)).mem(MemRef::slot(MemSpace::Heap, 8)));
    block.push(Inst::new(Opcode::Add).def(Reg::gpr(13)).use_(Reg::gpr(12)).use_(Reg::gpr(11)));
    block.push(Inst::new(Opcode::Add).def(Reg::gpr(4)).use_(Reg::gpr(5)).use_(Reg::gpr(6)));
    block.push(Inst::new(Opcode::Add).def(Reg::gpr(7)).use_(Reg::gpr(8)).use_(Reg::gpr(8)));
    block.push(Inst::new(Opcode::Xor).def(Reg::gpr(9)).use_(Reg::gpr(5)).use_(Reg::gpr(8)));

    println!("original block:\n{block}");

    // The PowerPC 7410 model from the paper's experiments.
    let machine = MachineConfig::ppc7410();

    // Schedule with the paper's CPS list scheduler.
    let scheduler = ListScheduler::new(&machine);
    let outcome = scheduler.schedule_block(&block);
    println!(
        "estimated cycles: {} -> {} ({:+.1}%)",
        outcome.cycles_before,
        outcome.cycles_after,
        -100.0 * outcome.improvement()
    );
    println!("scheduled block:\n{}", outcome.apply(&block));

    // The Table 1 features the filter sees (one cheap pass, no DAG).
    let features = FeatureVector::extract(&block);
    println!("features: {features}");

    // A trivial hand-written filter; learned filters come from
    // `examples/train_filter.rs`.
    let filter = SizeThresholdFilter::new(5);
    println!("size>=5 filter says: {}", if filter.should_schedule(&features) { "schedule it" } else { "skip it" });

    // The detailed simulator standing in for real hardware.
    let hw = PipelineSim::new(&machine);
    println!("detailed-simulator cycles: {} -> {}", hw.block_cycles(&block), hw.block_cycles(&outcome.apply(&block)));
}
