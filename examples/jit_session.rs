//! Simulate a JIT compiling a whole program three ways — never schedule,
//! always schedule, learned filter — and compare compile effort against
//! application speed, the paper's efficiency/effectiveness trade-off.
//!
//! ```text
//! cargo run --release --example jit_session [-- <scale>]
//! ```

use schedfilter::filters::{collect_trace, train_filter, Filter, TrainConfig};
use schedfilter::jit::{app_cycles, CompileSession};
use schedfilter::prelude::*;

fn main() {
    let scale: f64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(0.2);
    let machine = MachineConfig::ppc7410();

    // Train a filter on the SPECjvm98-like suite ("at the factory")...
    println!("training a t=20 filter on the SPECjvm98-like suite (scale {scale})...");
    let jvm98 = Suite::specjvm98(scale);
    let mut traces = Vec::new();
    for bench in jvm98.benchmarks() {
        traces.extend(collect_trace(bench.program(), &machine));
    }
    let learned = train_filter(&traces, &TrainConfig::with_threshold(20));

    // ...and deploy it on a program it has never seen (the FP suite).
    let fp = Suite::fp(scale);
    let program = fp.benchmarks()[3].program(); // voronoi
    println!(
        "\ncompiling {} ({} methods, {} blocks):\n",
        program.name(),
        program.methods().len(),
        program.block_count()
    );

    let session = CompileSession::new(&machine);
    let strategies: Vec<(&str, Box<dyn Filter>)> = vec![
        ("NS (never schedule)", Box::new(schedfilter::filters::NeverSchedule)),
        ("LS (always schedule)", Box::new(schedfilter::filters::AlwaysSchedule)),
        ("L/N learned filter", Box::new(learned)),
    ];

    println!("{:<22} {:>9} {:>12} {:>14} {:>12}", "strategy", "scheduled", "compile µs", "app cycles", "vs NS");
    let baseline = app_cycles(program, &machine) as f64;
    for (name, filter) in &strategies {
        let (compiled, stats) = session.compile(program, filter.as_ref());
        let cycles = app_cycles(&compiled, &machine);
        println!(
            "{:<22} {:>4}/{:<4} {:>12.1} {:>14} {:>11.3}",
            name,
            stats.scheduled_blocks,
            stats.total_blocks,
            stats.pass_ns() as f64 / 1000.0,
            cycles,
            cycles as f64 / baseline,
        );
    }
    println!("\nThe filter should land near LS on app cycles at a fraction of the compile time.");
}
