//! Train a "whether to schedule" filter exactly as the paper does:
//! trace the suite, label with a threshold, induce rules with RIPPER,
//! and print the resulting heuristic in Figure 4's format.
//!
//! ```text
//! cargo run --release --example train_filter [-- <scale> <threshold>]
//! ```

use schedfilter::filters::{classification_matrix, collect_trace, train_filter, train_loocv, LabelConfig, TrainConfig};
use schedfilter::prelude::*;

fn main() {
    let mut args = std::env::args().skip(1);
    let scale: f64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(0.2);
    let threshold: u32 = args.next().and_then(|s| s.parse().ok()).unwrap_or(20);

    println!("generating SPECjvm98-like suite at scale {scale}...");
    let machine = MachineConfig::ppc7410();
    let suite = Suite::specjvm98(scale);

    println!("tracing (instrumented scheduling pass over every block)...");
    let mut traces = Vec::new();
    for bench in suite.benchmarks() {
        traces.extend(collect_trace(bench.program(), &machine));
    }
    println!("  {} blocks traced", traces.len());

    let config = TrainConfig::with_threshold(threshold);

    // The "at the factory" filter, trained on everything.
    println!("\ntraining the factory filter at t={threshold}% (RIPPER)...");
    let factory = train_filter(&traces, &config);
    println!("{}", factory.rules());

    // The evaluation protocol: leave one benchmark out.
    println!("leave-one-benchmark-out error rates at t={threshold}%:");
    for (bench, filter) in train_loocv(&traces, &config) {
        let own: Vec<_> = traces.iter().filter(|r| r.benchmark == bench).cloned().collect();
        let m = classification_matrix(&own, &filter, LabelConfig::new(threshold));
        println!(
            "  {bench:<10} error {:>5.2}%  (predicts LS for {} of {} blocks)",
            m.error_percent(),
            m.predicted_positive(),
            m.total(),
        );
    }
}
