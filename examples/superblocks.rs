//! Superblock scheduling — the paper's deferred extension (§3.1):
//! merge profile-hot fall-through chains into straight-line traces and
//! let the scheduler speculate pure computation across the side exits.
//!
//! ```text
//! cargo run --release --example superblocks [-- <scale>]
//! ```

use schedfilter::jit::{form_superblocks, superblock_gain};
use schedfilter::prelude::*;

fn main() {
    let scale: f64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(0.1);
    let machine = MachineConfig::ppc7410();
    let suite = Suite::fp(scale);

    println!("superblock vs local scheduling on the FP suite (scale {scale}):\n");
    println!(
        "{:<10} {:>8} {:>12} {:>12} {:>12} {:>8}",
        "benchmark", "traces", "unsched", "local", "superblock", "extra"
    );
    for bench in suite.benchmarks() {
        let g = superblock_gain(bench.program(), &machine, 70);
        println!(
            "{:<10} {:>8} {:>12} {:>12} {:>12} {:>7.2}%",
            bench.name(),
            g.merged_traces,
            g.unscheduled,
            g.local,
            g.superblock,
            100.0 * g.extra_improvement(),
        );
    }

    // Show one concrete trace being formed and scheduled.
    let program = suite.benchmarks()[0].program();
    let method = program
        .methods()
        .iter()
        .max_by_key(|m| form_superblocks(m, 70).into_iter().map(|sb| sb.width()).max().unwrap_or(0))
        .expect("suite has methods");
    let sbs = form_superblocks(method, 70);
    let widest = sbs.iter().max_by_key(|sb| sb.width()).expect("method has traces");
    println!(
        "\nwidest trace in {}: {} blocks, {} instructions, exec weight {}",
        method.name(),
        widest.width(),
        widest.insts.len(),
        widest.exec_count,
    );
    let scheduler = ListScheduler::new(&machine);
    let local = scheduler.schedule_insts(&widest.insts);
    let speculative = scheduler.schedule_superblock(&widest.insts);
    println!(
        "estimated cycles: unscheduled {}, local-barrier schedule {}, speculative schedule {}",
        local.cycles_before, local.cycles_after, speculative.cycles_after,
    );

    // The scope axis: run the whole trace→label→train pipeline per
    // formed trace instead of per block, on the same corpus.
    let programs: Vec<Program> = suite.benchmarks().iter().map(|b| b.program().clone()).collect();
    let run = Experiment::new(machine.clone()).with_scope(ScopeKind::Superblock(70)).run(programs);
    let merged = run.all_traces().iter().filter(|r| r.features.get(FeatureKind::TraceWidth) > 1.0).count();
    println!(
        "\nsuperblock-scope pipeline: {} trace records ({} merged), filter {}",
        run.all_traces().len(),
        merged,
        run.loocv_filters(0)[0].1.name(),
    );
    println!("\nThe paper reports superblocks add only 1-2% over local scheduling — the");
    println!("filter question (whether to schedule at all) matters more than trace scope.");
    println!("`repro superblock` compares both scopes on every registry machine.");
}
