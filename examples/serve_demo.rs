//! Run the whole serving loop in one process: bind a filter service,
//! drive it with a client, watch the retrainer hot-swap the deployed
//! filter mid-flight, and drain it gracefully.
//!
//! ```text
//! cargo run --release --example serve_demo [-- <scale>]
//! ```

use schedfilter::filters::{collect_trace, LearnerKind, TimingMode, TraceOptions};
use schedfilter::prelude::*;
use schedfilter::serve::Response;

fn main() {
    let scale: f64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(0.2);
    let machine = MachineConfig::ppc7410();

    // Seed the service "at the factory": trace the SPECjvm98-like suite
    // and let bind train + deploy the epoch-1 filter from it.
    println!("seeding from the SPECjvm98-like suite (scale {scale})...");
    let jvm98 = Suite::specjvm98(scale);
    let mut seed = Vec::new();
    for bench in jvm98.benchmarks() {
        seed.extend(collect_trace(bench.program(), &machine));
    }
    println!("  {} trace records", seed.len());

    let mut config = ServeConfig::new(machine, seed);
    config.options = TraceOptions { timing: TimingMode::Deterministic, ..TraceOptions::default() };
    config.learner = LearnerKind::Stump; // retraining in microseconds
    config.retrain_every = 200;
    let handle = Server::bind("127.0.0.1:0", config).expect("bind");
    println!("serving {} on {} (epoch {})\n", handle.key(), handle.local_addr(), handle.epoch());

    // Now ship it traffic it has never seen — the FP suite — and watch
    // the observed records fold back into the filter.
    let fp = Suite::fp(scale);
    let mut client = ServeClient::connect(handle.local_addr()).expect("connect");
    println!("{:<12} {:>7} {:>10} {:>7}", "benchmark", "blocks", "scheduled", "epoch");
    for round in 0..3u64 {
        for (i, bench) in fp.benchmarks().iter().enumerate() {
            let program = bench.program();
            let id = round * 100 + i as u64;
            match client.request_with_retry(id, program.name(), program.methods(), 8).expect("request") {
                Response::Batch(batch) => {
                    println!(
                        "{:<12} {:>7} {:>10} {:>7}",
                        program.name(),
                        batch.totals.total_blocks,
                        batch.totals.scheduled_blocks,
                        batch.epoch
                    );
                }
                other => panic!("unexpected response {other:?}"),
            }
        }
    }

    let report = handle.shutdown();
    println!(
        "\ndrained: {} units served, {} records absorbed, {} retrain folds, final epoch {}",
        report.stats.units_served, report.retrain.records_absorbed, report.retrain.retrains, report.retrain.last_epoch
    );
    assert_eq!(report.retrain.records_absorbed, report.stats.units_served, "the drain is lossless");
    println!("The epoch column should climb as served traffic folds back into the filter.");
}
