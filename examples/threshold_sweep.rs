//! Sweep the two deployment knobs: the labeling threshold `t` (the
//! paper's noise-reduction knob, §4.4) and — the main act — the
//! decision policy's operating point `cycles_per_work`, which tunes how
//! many application cycles one unit of compile-time work is worth
//! *without retraining anything*.
//!
//! ```text
//! cargo run --release --example threshold_sweep [-- <scale>]
//! ```

use schedfilter::filters::{
    collect_trace, oracle_times, sched_time_policy, sched_time_ratio, train_loocv, BenefitModel, TrainConfig,
};
use schedfilter::prelude::*;
use schedfilter::ripper::geometric_mean;

/// The labeling threshold of the operating-point sweep: `t = 0`
/// partitions every unit into LS/NS, so the policies see the richest
/// score distribution.
const T: u32 = 0;

fn main() {
    let scale: f64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(0.15);
    let machine = MachineConfig::ppc7410();
    let suite = Suite::specjvm98(scale);

    println!("tracing SPECjvm98-like suite at scale {scale}...");
    let mut traces = Vec::new();
    for bench in suite.benchmarks() {
        traces.extend(collect_trace(bench.program(), &machine));
    }
    let own = |bench: &str| -> Vec<TraceRecord> { traces.iter().filter(|r| r.benchmark == bench).cloned().collect() };

    // One trained filter per fold, at one labeling threshold — the
    // sweep below never retrains, only re-prices work.
    let folds = train_loocv(&traces, &TrainConfig::with_threshold(T));

    // First knob, briefly: the labeling threshold moves how much the
    // filter schedules at all.
    println!("\nlabeling threshold (hard policy):");
    println!("{:>4} {:>10} {:>12}", "t%", "LS insts", "sched ratio");
    for t in (0..=50).step_by(25) {
        let config = TrainConfig::with_threshold(t);
        let ls_count = traces.iter().filter(|r| LabelConfig::new(t).label(r) == Some(true)).count();
        let fold_filters = train_loocv(&traces, &config);
        let sched: Vec<f64> =
            fold_filters.iter().map(|(bench, f)| sched_time_ratio(&own(bench), f).work_ratio()).collect();
        println!("{t:>4} {ls_count:>10} {:>12.3}", geometric_mean(&sched));
    }

    // Second knob, the policy layer: the *same* trained filters, with
    // the schedule/skip call re-priced at different operating points.
    // Each fold's benefit model is calibrated on the other benchmarks'
    // traces, mirroring the LOOCV training protocol.
    println!("\noperating-point sweep (t={T}, same filters throughout):");
    println!(
        "{:>8} {:>8} {:>10} {:>14} {:>14} {:>14}",
        "c", "policy", "scheduled", "net cycles", "hard net", "oracle net"
    );
    for c in [0.0, 0.25, 1.0, 4.0, 16.0, 256.0] {
        let mut hard = schedfilter::filters::EvalTimes::default();
        let mut eb = schedfilter::filters::EvalTimes::default();
        let mut oracle = schedfilter::filters::EvalTimes::default();
        for (bench, filter) in &folds {
            let tr = own(bench);
            hard.accumulate(&sched_time_ratio(&tr, filter));
            let others: Vec<&TraceRecord> = traces.iter().filter(|r| &r.benchmark != bench).collect();
            let policy = DecisionPolicy::ExpectedBenefit(BenefitModel::calibrate(others, c));
            eb.accumulate(&sched_time_policy(&tr, filter, &policy));
            oracle.accumulate(&oracle_times(&tr, c));
        }
        println!(
            "{c:>8.2} {:>8} {:>6}/{:<3} {:>14.0} {:>14.0} {:>14.0}",
            "eb",
            eb.scheduled_blocks,
            eb.total_blocks,
            eb.net_cycles(c),
            hard.net_cycles(c),
            oracle.net_cycles(c),
        );
    }
    println!(
        "\nRaising c makes compile-time work dearer: the expected-benefit policy\n\
         slides from schedule-almost-everything to schedule-nothing while the\n\
         hard policy stays fixed; the oracle column is the non-deployable ceiling.\n\
         Pick c per deployment (JIT: high, AOT: low) — no retraining needed."
    );
}
