//! Sweep the labeling threshold `t` (the paper's noise-reduction knob,
//! §4.4) and watch the efficiency/effectiveness trade-off move.
//!
//! ```text
//! cargo run --release --example threshold_sweep [-- <scale>]
//! ```

use schedfilter::filters::{
    app_time_ratio, collect_trace, sched_time_ratio, train_loocv, AlwaysSchedule, LabelConfig, TrainConfig,
};
use schedfilter::prelude::*;
use schedfilter::ripper::geometric_mean;

fn main() {
    let scale: f64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(0.15);
    let machine = MachineConfig::ppc7410();
    let suite = Suite::specjvm98(scale);

    println!("tracing SPECjvm98-like suite at scale {scale}...");
    let mut traces = Vec::new();
    for bench in suite.benchmarks() {
        traces.extend(collect_trace(bench.program(), &machine));
    }
    let names: Vec<String> = suite.benchmarks().iter().map(|b| b.name().to_string()).collect();

    let ls_app: Vec<f64> = names
        .iter()
        .map(|n| {
            let own: Vec<_> = traces.iter().filter(|r| &r.benchmark == n).cloned().collect();
            app_time_ratio(&own, &AlwaysSchedule)
        })
        .collect();
    println!("\nalways-scheduling app-time ratio (geo. mean): {:.3}\n", geometric_mean(&ls_app));

    println!("{:>4} {:>10} {:>12} {:>10} {:>12}", "t%", "LS insts", "sched ratio", "app ratio", "benefit kept");
    let ls_gm = geometric_mean(&ls_app);
    for t in (0..=50).step_by(5) {
        let config = TrainConfig::with_threshold(t);
        let ls_count = traces.iter().filter(|r| LabelConfig::new(t).label(r) == Some(true)).count();
        let folds = train_loocv(&traces, &config);
        let mut sched = Vec::new();
        let mut app = Vec::new();
        for (bench, filter) in &folds {
            let own: Vec<_> = traces.iter().filter(|r| &r.benchmark == bench).cloned().collect();
            sched.push(sched_time_ratio(&own, filter).work_ratio());
            app.push(app_time_ratio(&own, filter));
        }
        let app_gm = geometric_mean(&app);
        let kept = if ls_gm < 1.0 { (1.0 - app_gm) / (1.0 - ls_gm) * 100.0 } else { 0.0 };
        println!("{:>4} {:>10} {:>12.3} {:>10.3} {:>11.0}%", t, ls_count, geometric_mean(&sched), app_gm, kept,);
    }
    println!("\nLower sched ratio = cheaper compiles; 'benefit kept' = share of LS's speedup retained.");
}
