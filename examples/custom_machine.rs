//! Define a custom machine model and see how the value of scheduling —
//! and therefore of the filter — depends on the hardware's own dynamism
//! (paper §3.1's discussion of older, less dynamic processors).
//!
//! ```text
//! cargo run --release --example custom_machine
//! ```

use schedfilter::filters::{app_time_ratio, collect_trace, predicted_time_ratio, AlwaysSchedule};
use schedfilter::machine::{FunctionalUnit, LatencyTable, UnitSet};
use schedfilter::prelude::*;
use schedfilter::ripper::geometric_mean;
use wts_ir::UnitClass;

fn main() {
    // A hypothetical embedded core: single integer unit, slow memory,
    // very slow FP, no out-of-order window at all.
    let mut latencies = LatencyTable::ppc7410();
    latencies.set(Opcode::Lwz, 5);
    latencies.set(Opcode::Lfd, 6);
    latencies.set(Opcode::Fadd, 8);
    latencies.set(Opcode::Fmul, 10);
    let embedded = MachineConfig::new(
        "embedded-core",
        1,
        1,
        1,
        latencies,
        [
            (UnitClass::SimpleInt, UnitSet::of(&[FunctionalUnit::Iu1])),
            (UnitClass::ComplexInt, UnitSet::of(&[FunctionalUnit::Iu1])),
            (UnitClass::Float, UnitSet::of(&[FunctionalUnit::Fpu])),
            (UnitClass::Branch, UnitSet::of(&[FunctionalUnit::Bru])),
            (UnitClass::LoadStore, UnitSet::of(&[FunctionalUnit::Lsu])),
            (UnitClass::System, UnitSet::of(&[FunctionalUnit::Su])),
        ],
    );

    let machines = [MachineConfig::ppc7410(), MachineConfig::deep_fp(), embedded];
    let suite = Suite::fp(0.1);

    println!("How much does always-scheduling help, per machine (FP suite)?\n");
    println!("{:<16} {:>14} {:>14}", "machine", "predicted LS%", "app-time LS");
    for machine in &machines {
        let mut pred = Vec::new();
        let mut app = Vec::new();
        for bench in suite.benchmarks() {
            let traces = collect_trace(bench.program(), machine);
            pred.push(predicted_time_ratio(&traces, &AlwaysSchedule));
            app.push(app_time_ratio(&traces, &AlwaysSchedule));
        }
        println!("{:<16} {:>13.2}% {:>14.3}", machine.name(), geometric_mean(&pred), geometric_mean(&app),);
    }
    println!("\nLess dynamic hardware (smaller window, longer latencies) gains more from");
    println!("static scheduling — which makes deciding *whether* to schedule matter more.");
}
