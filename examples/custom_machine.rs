//! Define a custom machine model with the builder, stand it next to the
//! registry, and see how the value of scheduling — and therefore of the
//! filter — depends on the hardware's own dynamism (paper §3.1's
//! discussion of older, less dynamic processors).
//!
//! ```text
//! cargo run --release --example custom_machine
//! ```

use schedfilter::filters::{app_time_ratio, collect_trace, predicted_time_ratio, AlwaysSchedule};
use schedfilter::prelude::*;
use schedfilter::ripper::geometric_mean;

fn main() {
    // A hypothetical in-order core sitting between the registry's
    // "embedded" (slow everything) and "ppc7410" (the paper's target):
    // slow memory and very slow FP, but regular integer latencies.
    let hybrid = MachineConfig::builder("hybrid-core")
        .latency(Opcode::Lwz, 5)
        .latency(Opcode::Lfd, 6)
        .latency(Opcode::Fadd, 8)
        .latency(Opcode::Fmul, 10)
        .build();

    let mut machines = registry();
    machines.push(hybrid);
    let suite = Suite::fp(0.1);

    println!("How much does always-scheduling help, per machine (FP suite)?\n");
    println!("{:<16} {:>14} {:>14}", "machine", "predicted LS%", "app-time LS");
    for machine in &machines {
        let mut pred = Vec::new();
        let mut app = Vec::new();
        for bench in suite.benchmarks() {
            let traces = collect_trace(bench.program(), machine);
            pred.push(predicted_time_ratio(&traces, &AlwaysSchedule));
            app.push(app_time_ratio(&traces, &AlwaysSchedule));
        }
        println!("{:<16} {:>13.2}% {:>14.3}", machine.name(), geometric_mean(&pred), geometric_mean(&app),);
    }
    println!("\nLess dynamic hardware (smaller window, longer latencies) gains more from");
    println!("static scheduling — which makes deciding *whether* to schedule matter more.");
    println!("Add your own target: MachineConfig::builder(..) + a row in wts_machine::REGISTRY.");
}
