//! # schedfilter
//!
//! A reproduction of **Cavazos & Moss, "Inducing Heuristics To Decide
//! Whether To Schedule" (PLDI 2004)** as a production-quality Rust
//! workspace.
//!
//! The paper induces *filters* — cheap learned predicates over static basic
//! block features — that decide, per block, whether running the instruction
//! scheduler is worth its compile-time cost. This facade crate re-exports
//! the whole system:
//!
//! * [`ir`] — machine-level IR (blocks, instructions, hazards, categories);
//! * [`machine`] — PowerPC 7410 model, cheap cost estimator, detailed
//!   pipeline simulator;
//! * [`deps`] — dependence DAGs and critical paths;
//! * [`sched`] — the CPS list scheduler;
//! * [`features`] — the 13 Table 1 block features plus the trace-shape
//!   features of the superblock scope;
//! * [`ripper`] — RIPPER rule induction and baseline learners;
//! * [`filters`] — the paper's contribution: tracing, threshold labeling,
//!   filter training and evaluation, unified behind the
//!   [`Experiment`](filters::Experiment) pipeline (crate `wts-core`);
//! * [`jit`] — synthetic benchmark suites and the JIT compile session;
//! * [`serve`] — the hot-swappable filter service: wire protocol, TCP
//!   server, client and online retrainer over the shared
//!   [`FilterStore`](filters::FilterStore) (crate `wts-serve`);
//! * [`verify`] — the independent static checker: dependence soundness,
//!   timing legality and speculation safety (crate `wts-verify`, with
//!   debug-assert pipeline hooks behind the `verify` cargo feature);
//! * [`experiments`] — regeneration of every table and figure.
//!
//! # Quick start
//!
//! ```
//! use schedfilter::prelude::*;
//!
//! // Build a block, schedule it, and ask a trivial filter about it.
//! let mut b = BasicBlock::new(0);
//! b.push(Inst::new(Opcode::Lfd).def(Reg::fpr(1)).use_(Reg::gpr(1))
//!     .mem(MemRef::slot(MemSpace::Heap, 0)));
//! b.push(Inst::new(Opcode::Fadd).def(Reg::fpr(2)).use_(Reg::fpr(1)).use_(Reg::fpr(1)));
//! b.push(Inst::new(Opcode::Lfd).def(Reg::fpr(3)).use_(Reg::gpr(2))
//!     .mem(MemRef::slot(MemSpace::Heap, 8)));
//!
//! let machine = MachineConfig::ppc7410();
//! let outcome = ListScheduler::new(&machine).schedule_block(&b);
//! assert!(outcome.cycles_after <= outcome.cycles_before);
//!
//! let fv = FeatureVector::extract(&b);
//! let filter = SizeThresholdFilter::new(2);
//! assert!(filter.should_schedule(&fv));
//! ```

pub use wts_core as filters;
pub use wts_deps as deps;
pub use wts_experiments as experiments;
pub use wts_features as features;
pub use wts_ir as ir;
pub use wts_jit as jit;
pub use wts_machine as machine;
pub use wts_ripper as ripper;
pub use wts_sched as sched;
pub use wts_serve as serve;
pub use wts_verify as verify;

/// Commonly used items, importable with one `use`.
pub mod prelude {
    pub use wts_core::{
        BenefitModel, CompiledFilter, DecisionPolicy, Experiment, ExperimentMatrix, ExperimentRun, FeatureBatch,
        Filter, FilterScore, LabelConfig, LearnedFilter, Learner, LearnerKind, MachinePortfolio, MatrixRun,
        PortfolioEntry, ScopeKind, SizeThresholdFilter, TimingMode, TraceOptions, TraceRecord, UnitEconomics,
    };
    pub use wts_deps::DepGraph;
    pub use wts_features::{FeatureKind, FeatureMask, FeatureVector, TraceShape};
    pub use wts_ir::{BasicBlock, Category, Hazards, Inst, MemRef, MemSpace, Method, Opcode, Program, Reg};
    pub use wts_jit::{Benchmark, CompileSession, Suite};
    pub use wts_machine::{
        registry, CostModel, CostProvider, EstimatorKind, MachineBuilder, MachineConfig, PipelineSim,
    };
    pub use wts_ripper::{Dataset, RipperConfig, RuleSet};
    pub use wts_sched::{ListScheduler, SchedulePolicy};
    pub use wts_serve::{ServeClient, ServeConfig, Server};
    pub use wts_verify::{verify_program, verify_unit, Diagnostic, VerifyReport};
}
